//! Byte-accurate memory-budget accounting for the out-of-core pipeline.
//!
//! A [`MemoryBudget`] is a shared ledger of *reserved* bytes against an
//! optional hard limit. Pipeline phases reserve the bytes they are about
//! to allocate **before** allocating them ([`MemoryBudget::try_reserve`]);
//! a failed reservation is the typed signal to spill to disk (or surface
//! `BudgetExceeded`) instead of letting the allocator OOM the process.
//! Reservations are RAII: dropping a [`Reservation`] returns its bytes to
//! the ledger, so a phase's working set is released exactly when its data
//! structures go out of scope.
//!
//! The ledger is deliberately *not* wired to the recorder — it is a pure
//! accounting type usable from any crate. Callers that want observability
//! gauge `mem.budget.limit` / `mem.budget.used` / `mem.budget.peak`
//! themselves; those names live under the reserved `mem.` prefix so
//! logical-clock snapshots exclude them (budgets change peak memory, never
//! results).
//!
//! Accounting uses atomics only — reserving from worker threads never
//! takes a lock — and all arithmetic saturates: a release can never
//! underflow even if a caller forges byte counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A reservation request that would exceed the budget's hard limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// Label of the phase or structure that asked (e.g. `"read-store"`).
    pub label: &'static str,
    /// Bytes the caller asked for.
    pub requested: u64,
    /// Bytes already reserved when the request was made.
    pub used: u64,
    /// The hard limit in bytes.
    pub limit: u64,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: {} requested {} B with {} B of {} B already reserved",
            self.label, self.requested, self.used, self.limit
        )
    }
}

impl std::error::Error for BudgetError {}

#[derive(Debug, Default)]
struct Ledger {
    /// 0 means unlimited.
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

/// A shared, thread-safe ledger of reserved bytes against an optional
/// hard limit. Cloning is cheap and all clones share one ledger.
#[derive(Debug, Clone, Default)]
pub struct MemoryBudget {
    ledger: Arc<Ledger>,
}

impl MemoryBudget {
    /// A budget with no limit: every reservation succeeds, but usage and
    /// peak are still tracked (useful for reporting).
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget::default()
    }

    /// A budget with a hard limit of `limit_bytes`. A limit of 0 is
    /// treated as unlimited (use [`MemoryBudget::unlimited`] for clarity).
    pub fn with_limit(limit_bytes: u64) -> MemoryBudget {
        MemoryBudget {
            ledger: Arc::new(Ledger {
                limit: limit_bytes,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// The hard limit in bytes, or `None` when unlimited.
    pub fn limit(&self) -> Option<u64> {
        (self.ledger.limit != 0).then_some(self.ledger.limit)
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.ledger.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes over the budget's lifetime.
    pub fn peak(&self) -> u64 {
        self.ledger.peak.load(Ordering::Relaxed)
    }

    /// Bytes still reservable, or `u64::MAX` when unlimited.
    pub fn remaining(&self) -> u64 {
        match self.limit() {
            None => u64::MAX,
            Some(limit) => limit.saturating_sub(self.used()),
        }
    }

    /// True when a reservation of `bytes` would succeed right now. A
    /// non-mutating preview for admission control; the answer can go
    /// stale, so committing still requires [`MemoryBudget::try_reserve`].
    pub fn would_fit(&self, bytes: u64) -> bool {
        bytes <= self.remaining()
    }

    /// Reserves `bytes` against the limit, or reports the typed overflow
    /// without changing the ledger. The returned [`Reservation`] releases
    /// the bytes when dropped.
    pub fn try_reserve(
        &self,
        label: &'static str,
        bytes: u64,
    ) -> Result<Reservation, BudgetError> {
        let ledger = &self.ledger;
        let mut used = ledger.used.load(Ordering::Relaxed);
        loop {
            let next = used.saturating_add(bytes);
            if ledger.limit != 0 && next > ledger.limit {
                return Err(BudgetError {
                    label,
                    requested: bytes,
                    used,
                    limit: ledger.limit,
                });
            }
            match ledger.used.compare_exchange_weak(
                used,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    ledger.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(Reservation {
                        budget: self.clone(),
                        bytes,
                        label,
                    });
                }
                Err(actual) => used = actual,
            }
        }
    }

    fn release(&self, bytes: u64) {
        let ledger = &self.ledger;
        let mut used = ledger.used.load(Ordering::Relaxed);
        loop {
            let next = used.saturating_sub(bytes);
            match ledger.used.compare_exchange_weak(
                used,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => used = actual,
            }
        }
    }
}

/// RAII handle for reserved bytes: dropping it returns the bytes to the
/// budget. Grow/shrink lets a phase track a structure whose exact size is
/// only known as it is built (e.g. a spill buffer).
#[derive(Debug)]
pub struct Reservation {
    budget: MemoryBudget,
    bytes: u64,
    label: &'static str,
}

impl Reservation {
    /// Bytes this reservation currently holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The label the reservation was made under.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Reserves `additional` more bytes under the same label, failing
    /// (and leaving the reservation unchanged) if that would exceed the
    /// limit.
    pub fn grow(&mut self, additional: u64) -> Result<(), BudgetError> {
        let extra = self.budget.try_reserve(self.label, additional)?;
        self.bytes = self.bytes.saturating_add(extra.bytes);
        std::mem::forget(extra);
        Ok(())
    }

    /// Returns `bytes` of this reservation to the budget (clamped to what
    /// the reservation holds).
    pub fn shrink(&mut self, bytes: u64) {
        let give_back = bytes.min(self.bytes);
        self.bytes -= give_back;
        self.budget.release(give_back);
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_reserves_and_tracks_peak() {
        let b = MemoryBudget::unlimited();
        assert_eq!(b.limit(), None);
        let r1 = b.try_reserve("a", 10).expect("unlimited");
        let r2 = b.try_reserve("b", 20).expect("unlimited");
        assert_eq!(b.used(), 30);
        assert_eq!(b.remaining(), u64::MAX);
        drop(r2);
        assert_eq!(b.used(), 10);
        drop(r1);
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak(), 30);
        // Absurd requests saturate instead of wrapping.
        let r3 = b.try_reserve("c", u64::MAX).expect("unlimited saturates");
        assert_eq!(b.used(), u64::MAX);
        drop(r3);
    }

    #[test]
    fn limit_is_enforced_with_typed_overflow() {
        let b = MemoryBudget::with_limit(100);
        assert_eq!(b.limit(), Some(100));
        let r = b.try_reserve("store", 60).expect("fits");
        assert_eq!(b.remaining(), 40);
        assert!(b.would_fit(40));
        assert!(!b.would_fit(41));
        let err = b.try_reserve("index", 41).expect_err("over");
        assert_eq!(
            err,
            BudgetError {
                label: "index",
                requested: 41,
                used: 60,
                limit: 100
            }
        );
        assert!(err.to_string().contains("memory budget exceeded"));
        drop(r);
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak(), 60);
        b.try_reserve("index", 41).expect("fits after release");
    }

    #[test]
    fn reservations_release_on_drop_and_grow_shrink() {
        let b = MemoryBudget::with_limit(100);
        let mut r = b.try_reserve("buf", 30).expect("fits");
        r.grow(50).expect("fits");
        assert_eq!(r.bytes(), 80);
        assert_eq!(b.used(), 80);
        assert!(r.grow(30).is_err(), "grow past limit must fail");
        assert_eq!(r.bytes(), 80, "failed grow leaves reservation unchanged");
        r.shrink(200);
        assert_eq!(r.bytes(), 0);
        assert_eq!(b.used(), 0);
        drop(r);
        assert_eq!(b.used(), 0, "double release must not underflow");
        assert_eq!(b.peak(), 80);
    }

    #[test]
    fn clones_share_one_ledger_across_threads() {
        let b = MemoryBudget::with_limit(1_000_000);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        let r = b.try_reserve("t", 7).expect("fits");
                        drop(r);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(b.used(), 0);
        assert!(b.peak() >= 7);
    }
}
