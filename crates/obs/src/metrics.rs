//! Counters, gauges and fixed-bucket histograms, plus the deterministic
//! [`MetricsSnapshot`] serialisation.

use crate::json::{push_json_key, push_json_str};
use crate::schema::{self, ObsError, Value};
use crate::{CKPT_PREFIX, KERNEL_PREFIXES, MEM_PREFIX, OOC_PREFIX, SCHED_PREFIX};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default histogram bucket upper bounds: powers of two from 1 to 2³⁰.
/// Values above the last bound land in the overflow bucket. Powers of two
/// keep the bucket count small while spanning everything the pipeline
/// observes, from per-pair overlap counts to DP cell totals.
pub const DEFAULT_BOUNDS: &[u64] = &[
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
];

/// A fixed-bucket histogram: `counts[i]` holds observations `v` with
/// `v <= bounds[i]` (and `v > bounds[i-1]`); the final slot is the
/// overflow bucket for values above every bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Ascending, inclusive upper bounds.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts; `bounds.len() + 1` entries, the last
    /// being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        // First bound >= value; equal values belong to the lower bucket
        // (bounds are inclusive), which is exactly what partition_point
        // gives over the predicate `bound < value`.
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Integer mean of the observations (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// The `num/den` quantile, derived from the bucket counts: the upper
    /// bound of the bucket containing the ⌈count·num/den⌉-th observation,
    /// clamped into `[min, max]` so the estimate never leaves the observed
    /// range. Integer-only and deterministic; 0 when empty.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 || den == 0 {
            return 0;
        }
        let rank = self.count.saturating_mul(num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let estimate = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: the best bound we have is the max.
                    self.max
                };
                return estimate.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// 90th-percentile estimate (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(90, 100)
    }

    /// 99th-percentile estimate (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }
}

/// An immutable, ordered snapshot of every metric a [`Recorder`] holds.
/// `BTreeMap` keys make iteration — and therefore serialisation — fully
/// deterministic.
///
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// A copy keeping only the metrics `keep` accepts.
    fn filtered(&self, keep: impl Fn(&str) -> bool) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(&k, &v)| (k, v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(&k, &v)| (k, v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(&k, v)| (k, v.clone()))
                .collect(),
        }
    }

    /// A copy without scheduling-dependent metrics (names under the
    /// reserved `sched.` prefix). This is the thread-count-invariant view
    /// used by the logical-clock determinism contract.
    pub fn without_scheduling(&self) -> MetricsSnapshot {
        self.filtered(|k| !k.starts_with(SCHED_PREFIX))
    }

    /// A copy without checkpoint-lifecycle metrics (names under the
    /// reserved `ckpt.` prefix). Those legitimately differ between an
    /// uninterrupted run and a crash-and-resume run, so the checkpoint
    /// determinism contract byte-compares the snapshot *without* them.
    pub fn without_checkpointing(&self) -> MetricsSnapshot {
        self.filtered(|k| !k.starts_with(CKPT_PREFIX))
    }

    /// A copy without process-memory metrics (names under the reserved
    /// `mem.` prefix, e.g. the peak-RSS gauge). Resident-set sizes vary
    /// with thread count, allocator behaviour and platform, so the
    /// logical-clock determinism contract byte-compares the snapshot
    /// *without* them.
    pub fn without_memory(&self) -> MetricsSnapshot {
        self.filtered(|k| !k.starts_with(MEM_PREFIX))
    }

    /// A copy without alignment-kernel-dependent metrics (names under the
    /// reserved [`KERNEL_PREFIXES`]). Those legitimately differ between
    /// `--align-kernel` settings (and CPU feature levels) while every other
    /// metric stays bit-identical — the kernel-equivalence contract
    /// byte-compares the snapshot *without* them.
    pub fn without_kernel_dependent(&self) -> MetricsSnapshot {
        self.filtered(|k| !KERNEL_PREFIXES.iter().any(|p| k.starts_with(p)))
    }

    /// A copy without out-of-core spill metrics (names under the reserved
    /// `ooc.` prefix). Spill volume, merge passes and fallbacks
    /// legitimately vary with the memory budget and disk behaviour while
    /// contigs and every other metric stay bit-identical — the
    /// out-of-core determinism contract byte-compares the snapshot
    /// *without* them.
    pub fn without_ooc(&self) -> MetricsSnapshot {
        self.filtered(|k| !k.starts_with(OOC_PREFIX))
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deterministic JSON serialisation: keys sorted (BTreeMap order),
    /// integers only, fixed layout. Two snapshots with equal contents
    /// serialise to byte-identical strings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"focus-metrics-v1\",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_key(&mut out, k);
            out.push('{');
            out.push_str(&format!(
                "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, ",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max
            ));
            push_json_str(&mut out, "bounds");
            out.push_str(": [");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&b.to_string());
            }
            out.push_str("], ");
            push_json_str(&mut out, "counts");
            out.push_str(": [");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a document produced by [`MetricsSnapshot::to_json`] back into
    /// a snapshot. The input is validated with the same checker CI uses
    /// ([`crate::check_metrics_snapshot`]) before extraction, so a
    /// corrupted or schema-violating document is a typed [`ObsError`],
    /// never a partial snapshot. Metric names and histogram bounds are
    /// interned process-wide (the recorder stores `&'static str` names),
    /// bounded by the number of *distinct* names ever restored.
    ///
    /// `from_json(to_json(s))` reproduces `s` exactly; this is what makes
    /// a recorder restored from a checkpoint serialise byte-identically to
    /// the recorder of an uninterrupted run.
    pub fn from_json(input: &str) -> Result<MetricsSnapshot, ObsError> {
        schema::check_metrics_snapshot(input)?;
        let value = schema::parse_json(input)?;
        let section = |name: &str| -> Result<BTreeMap<String, Value>, ObsError> {
            value
                .as_object()
                .and_then(|root| root.get(name))
                .and_then(Value::as_object)
                .cloned()
                .ok_or_else(|| ObsError::Schema {
                    detail: format!("{name:?} must be an object"),
                })
        };
        let mut snapshot = MetricsSnapshot::default();
        for (k, v) in &section("counters")? {
            let v = v.as_int().unwrap_or(0);
            snapshot.counters.insert(intern_name(k), v as u64);
        }
        for (k, v) in &section("gauges")? {
            snapshot.gauges.insert(intern_name(k), v.as_int().unwrap_or(0));
        }
        for (k, v) in &section("histograms")? {
            let h = v.as_object().ok_or_else(|| ObsError::Schema {
                detail: format!("histogram {k:?} must be an object"),
            })?;
            let int_of = |key: &str| h.get(key).and_then(Value::as_int).unwrap_or(0);
            let ints_of = |key: &str| -> Vec<u64> {
                h.get(key)
                    .and_then(Value::as_array)
                    .map(|a| a.iter().filter_map(Value::as_int).map(|i| i as u64).collect())
                    .unwrap_or_default()
            };
            let count = int_of("count") as u64;
            snapshot.histograms.insert(
                intern_name(k),
                Histogram {
                    bounds: intern_bounds(&ints_of("bounds")),
                    counts: ints_of("counts"),
                    count,
                    sum: int_of("sum") as u64,
                    // `to_json` writes min = 0 for an empty histogram; the
                    // in-memory empty sentinel is u64::MAX.
                    min: if count == 0 {
                        u64::MAX
                    } else {
                        int_of("min") as u64
                    },
                    max: int_of("max") as u64,
                },
            );
        }
        Ok(snapshot)
    }
}

/// Process-wide metric-name interner: restored snapshots need `&'static
/// str` keys like live-recorded ones. Leaks are bounded by the number of
/// distinct names ever restored.
fn intern_name(name: &str) -> &'static str {
    static REGISTRY: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut reg = REGISTRY
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(&interned) = reg.get(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    reg.insert(leaked);
    leaked
}

/// Process-wide histogram-bounds interner; [`DEFAULT_BOUNDS`] is pre-seeded
/// so the common case allocates nothing.
fn intern_bounds(bounds: &[u64]) -> &'static [u64] {
    static REGISTRY: OnceLock<Mutex<Vec<&'static [u64]>>> = OnceLock::new();
    let mut reg = REGISTRY
        .get_or_init(|| Mutex::new(vec![DEFAULT_BOUNDS]))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(&interned) = reg.iter().find(|&&b| b == bounds) {
        return interned;
    }
    let leaked: &'static [u64] = Box::leak(bounds.to_vec().into_boxed_slice());
    reg.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // Bounds 1, 2, 4, ...: value v lands in the first bucket whose
        // bound >= v; exactly-on-boundary values stay in the lower bucket.
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(1); // bucket 0 (<= 1)
        h.observe(2); // bucket 1 (<= 2)
        h.observe(3); // bucket 2 (<= 4)
        h.observe(4); // bucket 2 (<= 4, inclusive)
        h.observe(5); // bucket 3 (<= 8)
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 15);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 5);
    }

    #[test]
    fn zero_lands_in_the_first_bucket() {
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(0);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.min, 0);
    }

    #[test]
    fn overflow_bucket_catches_values_above_every_bound() {
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        let top = *DEFAULT_BOUNDS.last().expect("non-empty bounds");
        h.observe(top); // last real bucket (inclusive)
        h.observe(top + 1); // overflow
        h.observe(u64::MAX); // overflow
        assert_eq!(h.counts[DEFAULT_BOUNDS.len() - 1], 1);
        assert_eq!(h.counts[DEFAULT_BOUNDS.len()], 2);
    }

    #[test]
    fn custom_bounds_and_exact_boundaries() {
        static BOUNDS: &[u64] = &[10, 100, 1000];
        let mut h = Histogram::new(BOUNDS);
        for v in [10, 11, 100, 101, 1000, 1001] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 2, 2, 1]);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        static BOUNDS: &[u64] = &[1];
        let mut h = Histogram::new(BOUNDS);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let h = Histogram::new(DEFAULT_BOUNDS);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn quantiles_follow_bucket_upper_bounds() {
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Rank 50 lands in the bucket bounded by 64; rank 90 and 99 in the
        // bucket bounded by 128, clamped to the observed max of 100.
        assert_eq!(h.p50(), 64);
        assert_eq!(h.p90(), 100);
        assert_eq!(h.p99(), 100);
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
    }

    #[test]
    fn quantiles_of_empty_and_single_histograms() {
        let h = Histogram::new(DEFAULT_BOUNDS);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p90(), 42);
        assert_eq!(h.p99(), 42);
    }

    #[test]
    fn quantiles_clamp_overflow_bucket_to_observed_max() {
        static BOUNDS: &[u64] = &[10];
        let mut h = Histogram::new(BOUNDS);
        h.observe(5_000);
        h.observe(7_000);
        assert_eq!(h.p99(), 7_000);
        assert_eq!(h.p50(), 7_000);
    }

    #[test]
    fn without_memory_drops_mem_prefix_only() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("pipeline.contigs", 10);
        s.gauges.insert("mem.peak_rss_bytes", 1 << 20);
        let d = s.without_memory();
        assert_eq!(d.counters.len(), 1);
        assert!(d.gauges.is_empty());
    }

    #[test]
    fn without_ooc_drops_ooc_prefix_only() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("pipeline.contigs", 10);
        s.counters.insert("ooc.spill.runs", 6);
        s.gauges.insert("ooc.spill.bytes", 1 << 16);
        let d = s.without_ooc();
        assert_eq!(d.counters.len(), 1);
        assert!(d.counters.contains_key("pipeline.contigs"));
        assert!(d.gauges.is_empty());
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("z.last", 2);
        a.counters.insert("a.first", 1);
        a.gauges.insert("g", -5);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(7);
        a.histograms.insert("h", h);
        let json = a.to_json();
        // Sorted keys: a.first before z.last.
        let ia = json.find("a.first").expect("key present");
        let iz = json.find("z.last").expect("key present");
        assert!(ia < iz);
        assert_eq!(json, a.clone().to_json(), "serialisation is stable");
        assert!(json.contains("\"schema\": \"focus-metrics-v1\""));
    }

    #[test]
    fn without_scheduling_drops_sched_prefix_only() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("exec.tasks", 10);
        s.counters.insert("sched.exec.steals", 3);
        s.gauges.insert("sched.exec.workers", 4);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(1);
        s.histograms.insert("sched.exec.worker_busy_us", h);
        let d = s.without_scheduling();
        assert_eq!(d.counters.len(), 1);
        assert!(d.counters.contains_key("exec.tasks"));
        assert!(d.gauges.is_empty());
        assert!(d.histograms.is_empty());
    }

    #[test]
    fn without_checkpointing_drops_ckpt_prefix_only() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("seq.reads", 10);
        s.counters.insert("ckpt.saved", 3);
        s.gauges.insert("ckpt.degraded", 1);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(1);
        s.histograms.insert("ckpt.record_bytes", h);
        let d = s.without_checkpointing();
        assert_eq!(d.counters.len(), 1);
        assert!(d.counters.contains_key("seq.reads"));
        assert!(d.gauges.is_empty());
        assert!(d.histograms.is_empty());
    }

    #[test]
    fn without_kernel_dependent_drops_kernel_prefixes_only() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("align.candidates", 10);
        s.counters.insert("align.prefilter.rejected", 3);
        s.counters.insert("align.kernel.exact_hits", 2);
        s.gauges.insert("align.kernel.wide_lanes", 4);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(1);
        s.histograms.insert("align.prefilter.batch", h);
        let d = s.without_kernel_dependent();
        assert_eq!(d.counters.len(), 1);
        assert!(d.counters.contains_key("align.candidates"));
        assert!(d.gauges.is_empty());
        assert!(d.histograms.is_empty());
    }

    #[test]
    fn from_json_round_trips_to_json_exactly() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("align.candidates", 7);
        s.gauges.insert("align.band", -3);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(12);
        h.observe(1 << 20);
        s.histograms.insert("align.overlap_len", h);
        static CUSTOM: &[u64] = &[10, 100];
        s.histograms.insert("custom.bounds", Histogram::new(CUSTOM));
        let back = MetricsSnapshot::from_json(&s.to_json()).expect("round trip parses");
        assert_eq!(back, s);
        assert_eq!(back.to_json(), s.to_json(), "byte-identical re-serialisation");
        // The empty histogram's min sentinel survived the round trip.
        assert_eq!(back.histograms.get("custom.bounds").map(|h| h.min), Some(u64::MAX));
    }

    #[test]
    fn from_json_interns_names_and_bounds() {
        let mut s = MetricsSnapshot::default();
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(5);
        s.histograms.insert("interning.probe", h);
        let a = MetricsSnapshot::from_json(&s.to_json()).expect("parses");
        let b = MetricsSnapshot::from_json(&s.to_json()).expect("parses");
        let (ka, ha) = a.histograms.iter().next().expect("one histogram");
        let (kb, hb) = b.histograms.iter().next().expect("one histogram");
        // Two independent restores resolve to the same interned statics.
        assert!(std::ptr::eq(*ka, *kb), "names are interned");
        assert!(
            std::ptr::eq(ha.bounds.as_ptr(), hb.bounds.as_ptr()),
            "bounds are interned"
        );
    }

    #[test]
    fn from_json_rejects_corrupt_documents() {
        assert!(MetricsSnapshot::from_json("{").is_err());
        assert!(MetricsSnapshot::from_json(
            "{\"schema\": \"other\", \"counters\": {}, \"gauges\": {}, \"histograms\": {}}"
        )
        .is_err());
        // A flipped byte that breaks histogram consistency is caught by the
        // checker, not silently accepted.
        let bad = r#"{
  "schema": "focus-metrics-v1",
  "counters": {},
  "gauges": {},
  "histograms": {
    "h": {"count": 9, "sum": 1, "min": 1, "max": 1, "bounds": [1, 2], "counts": [1, 1, 0]}
  }
}"#;
        assert!(MetricsSnapshot::from_json(bad).is_err());
    }

    #[test]
    fn empty_snapshot_serialises_to_empty_sections() {
        let s = MetricsSnapshot::default();
        assert!(s.is_empty());
        let json = s.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
