//! The [`Recorder`] handle: cheap when disabled, thread-safe when enabled.

use crate::event::{Event, EventKind};
use crate::metrics::{Histogram, MetricsSnapshot, DEFAULT_BOUNDS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Observability options, carried inside `FocusConfig` (which is `Copy`,
/// so this must be too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsOptions {
    /// Record events and metrics. Off (the default) makes every recorder
    /// call a no-op branch.
    pub enabled: bool,
    /// Timestamp events with a logical tick counter instead of wall-clock
    /// microseconds, and exclude `sched.*` metrics from
    /// [`Recorder::snapshot_json`] — the deterministic mode in which two
    /// runs at any thread count produce byte-identical snapshots.
    pub logical_clock: bool,
}

impl ObsOptions {
    /// Enabled, wall-clock timestamps (the profiling mode).
    pub fn wall_clock() -> ObsOptions {
        ObsOptions {
            enabled: true,
            logical_clock: false,
        }
    }

    /// Enabled, logical-clock timestamps (the deterministic mode).
    pub fn logical() -> ObsOptions {
        ObsOptions {
            enabled: true,
            logical_clock: true,
        }
    }
}

/// Process-wide thread-lane assignment: each OS thread gets a small stable
/// id on first use, shared across recorders. Lane ids order by first
/// recording, so they are *not* deterministic across runs — which is why
/// deterministic instrumentation only emits events from the orchestrating
/// thread, and worker threads record order-free metrics instead.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

fn lane() -> u64 {
    LANE.with(|l| *l)
}

/// Lock helper that survives poisoning: a panicking task must not silence
/// the metrics of every later task (the data is counters, always valid).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    logical: bool,
    ticks: AtomicU64,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, i64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    events: Mutex<Vec<Event>>,
}

impl Inner {
    fn ts(&self) -> u64 {
        if self.logical {
            self.ticks.fetch_add(1, Ordering::Relaxed)
        } else {
            self.start.elapsed().as_micros() as u64
        }
    }

    fn push_event(
        &self,
        kind: EventKind,
        cat: &'static str,
        name: &'static str,
        args: Vec<(&'static str, i64)>,
    ) {
        let event = Event {
            ts: self.ts(),
            tid: lane(),
            cat,
            name,
            kind,
            args,
        };
        lock(&self.events).push(event);
    }
}

/// The instrumentation handle threaded through the pipeline.
///
/// Cloning shares the underlying store (an `Arc`), so one recorder created
/// at the pipeline entry serves every layer and thread. A disabled
/// recorder holds no store at all: every call is a `None` check.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates a recorder per `options` (disabled options give the no-op
    /// recorder).
    pub fn new(options: ObsOptions) -> Recorder {
        if !options.enabled {
            return Recorder::disabled();
        }
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                logical: options.logical_clock,
                ticks: AtomicU64::new(0),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op recorder (also `Recorder::default()`).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether anything is being recorded. Callers with non-trivial
    /// aggregation work should branch on this before computing what they
    /// would record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether timestamps are logical ticks (the deterministic mode).
    pub fn is_logical(&self) -> bool {
        self.inner.as_ref().map(|i| i.logical).unwrap_or(false)
    }

    /// Adds `delta` to counter `name`, saturating.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = lock(&inner.counters);
            let slot = counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            lock(&inner.gauges).insert(name, value);
        }
    }

    /// Records `value` into histogram `name` with the default power-of-two
    /// buckets.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.observe_with(name, value, DEFAULT_BOUNDS);
    }

    /// Records `value` into histogram `name` with custom bucket bounds.
    /// The first `observe` of a name fixes its bounds; later calls with
    /// different bounds still record into the existing histogram.
    pub fn observe_with(&self, name: &'static str, value: u64, bounds: &'static [u64]) {
        if let Some(inner) = &self.inner {
            lock(&inner.histograms)
                .entry(name)
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value);
        }
    }

    /// Opens a span; the returned guard records the matching end event on
    /// drop. Spans nest naturally through drop order.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        self.span_args(cat, name, &[])
    }

    /// [`Recorder::span`] with a structured integer payload on the begin
    /// event.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span_args(
        &self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, i64)],
    ) -> SpanGuard<'_> {
        if let Some(inner) = &self.inner {
            inner.push_event(EventKind::Begin, cat, name, args.to_vec());
        }
        SpanGuard {
            inner: self.inner.as_deref(),
            cat,
            name,
        }
    }

    /// Records a point event with a structured integer payload.
    pub fn instant(&self, cat: &'static str, name: &'static str, args: &[(&'static str, i64)]) {
        if let Some(inner) = &self.inner {
            inner.push_event(EventKind::Instant, cat, name, args.to_vec());
        }
    }

    /// Samples a counter time series (rendered as a counter track in
    /// Perfetto) — e.g. the edge-cut trajectory across bisection steps.
    pub fn counter_sample(&self, cat: &'static str, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.push_event(EventKind::Counter, cat, name, vec![("value", value)]);
        }
    }

    /// A consistent copy of every metric recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => MetricsSnapshot {
                counters: lock(&inner.counters).clone(),
                gauges: lock(&inner.gauges).clone(),
                histograms: lock(&inner.histograms).clone(),
            },
        }
    }

    /// The canonical snapshot serialisation. In logical-clock mode the
    /// scheduling-dependent `sched.*`, checkpoint-lifecycle `ckpt.*` and
    /// alignment-kernel-dependent (`align.prefilter.*`/`align.kernel.*`)
    /// metrics are excluded, which makes the output **byte-identical across
    /// thread counts, across crash/resume and across `--align-kernel`
    /// settings** (the determinism contracts); in wall-clock mode
    /// everything is included.
    pub fn snapshot_json(&self) -> String {
        let snapshot = self.snapshot();
        if self.is_logical() {
            snapshot
                .without_scheduling()
                .without_checkpointing()
                .without_kernel_dependent()
                .to_json()
        } else {
            snapshot.to_json()
        }
    }

    /// Replaces the recorded pipeline metrics with the contents of
    /// `snapshot` — the resume path: a checkpoint embeds the cumulative
    /// metrics of the run that wrote it, and loading it must leave the
    /// recorder exactly as if those phases had just executed. The
    /// recorder's own `ckpt.*`, `sched.*` and kernel-dependent
    /// (`align.prefilter.*`/`align.kernel.*`) entries are kept (they
    /// describe *this* process's checkpoint traffic, scheduling and
    /// dispatched alignment kernel, which a restore must not falsify), and
    /// any such entries inside `snapshot` are ignored for the same reason.
    /// No-op when disabled.
    pub fn restore_metrics(&self, snapshot: &MetricsSnapshot) {
        let Some(inner) = &self.inner else {
            return;
        };
        let keep = |k: &str| {
            k.starts_with(crate::CKPT_PREFIX)
                || k.starts_with(crate::SCHED_PREFIX)
                || crate::KERNEL_PREFIXES.iter().any(|p| k.starts_with(p))
        };
        let mut counters = lock(&inner.counters);
        counters.retain(|k, _| keep(k));
        for (&k, &v) in &snapshot.counters {
            if !keep(k) {
                counters.insert(k, v);
            }
        }
        drop(counters);
        let mut gauges = lock(&inner.gauges);
        gauges.retain(|k, _| keep(k));
        for (&k, &v) in &snapshot.gauges {
            if !keep(k) {
                gauges.insert(k, v);
            }
        }
        drop(gauges);
        let mut histograms = lock(&inner.histograms);
        histograms.retain(|k, _| keep(k));
        for (&k, h) in &snapshot.histograms {
            if !keep(k) {
                histograms.insert(k, h.clone());
            }
        }
    }

    /// A copy of every event recorded so far, in recording order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.events).clone(),
        }
    }
}

/// RAII guard for an open span; records the end event on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    inner: Option<&'a Inner>,
    cat: &'static str,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner {
            inner.push_event(EventKind::End, self.cat, self.name, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.add("c", 1);
        rec.gauge("g", 2);
        rec.observe("h", 3);
        rec.instant("t", "x", &[("a", 1)]);
        {
            let _s = rec.span("t", "s");
        }
        assert!(rec.snapshot().is_empty());
        assert!(rec.events().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("c", 2);
        rec.add("c", 3);
        rec.gauge("g", 1);
        rec.gauge("g", -7);
        rec.observe("h", 4);
        rec.observe("h", 5);
        let s = rec.snapshot();
        assert_eq!(s.counters.get("c"), Some(&5));
        assert_eq!(s.gauges.get("g"), Some(&-7));
        let h = s.histograms.get("h").expect("histogram recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
    }

    #[test]
    fn counters_saturate() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("c", u64::MAX);
        rec.add("c", 10);
        assert_eq!(rec.snapshot().counters.get("c"), Some(&u64::MAX));
    }

    #[test]
    fn spans_emit_balanced_begin_end_with_logical_timestamps() {
        let rec = Recorder::new(ObsOptions::logical());
        {
            let _outer = rec.span_args("cat", "outer", &[("k", 9)]);
            let _inner = rec.span("cat", "inner");
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            [
                EventKind::Begin,
                EventKind::Begin,
                EventKind::End,
                EventKind::End
            ]
        );
        // Drop order closes inner before outer.
        assert_eq!(events[2].name, "inner");
        assert_eq!(events[3].name, "outer");
        // Logical clock: strictly increasing ticks starting at 0.
        let ts: Vec<u64> = events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 1, 2, 3]);
        assert_eq!(events[0].args, vec![("k", 9)]);
    }

    #[test]
    fn clones_share_the_store() {
        let rec = Recorder::new(ObsOptions::logical());
        let other = rec.clone();
        other.add("c", 1);
        assert_eq!(rec.snapshot().counters.get("c"), Some(&1));
    }

    #[test]
    fn logical_snapshot_json_excludes_sched_metrics() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("exec.tasks", 4);
        rec.add("sched.exec.steals", 2);
        let json = rec.snapshot_json();
        assert!(json.contains("exec.tasks"));
        assert!(!json.contains("sched.exec.steals"));

        let wall = Recorder::new(ObsOptions::wall_clock());
        wall.add("sched.exec.steals", 2);
        assert!(wall.snapshot_json().contains("sched.exec.steals"));
    }

    #[test]
    fn logical_snapshot_json_excludes_ckpt_metrics() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("focus.contigs", 4);
        rec.add("ckpt.saved", 2);
        let json = rec.snapshot_json();
        assert!(json.contains("focus.contigs"));
        assert!(!json.contains("ckpt.saved"));

        let wall = Recorder::new(ObsOptions::wall_clock());
        wall.add("ckpt.saved", 2);
        assert!(wall.snapshot_json().contains("ckpt.saved"));
    }

    #[test]
    fn restore_metrics_replaces_pipeline_metrics_and_keeps_local_bookkeeping() {
        let saved = {
            let rec = Recorder::new(ObsOptions::logical());
            rec.add("align.pairs", 100);
            rec.gauge("focus.k", 4);
            rec.observe("h", 3);
            rec.snapshot()
        };
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("align.pairs", 1); // stale partial value, must be replaced
        rec.add("stale.other", 5); // not in the snapshot, must vanish
        rec.add("ckpt.loaded", 1); // this process's bookkeeping, must stay
        rec.add("sched.exec.steals", 2);
        rec.restore_metrics(&saved);
        let s = rec.snapshot();
        assert_eq!(s.counters.get("align.pairs"), Some(&100));
        assert_eq!(s.counters.get("stale.other"), None);
        assert_eq!(s.counters.get("ckpt.loaded"), Some(&1));
        assert_eq!(s.counters.get("sched.exec.steals"), Some(&2));
        assert_eq!(s.gauges.get("focus.k"), Some(&4));
        assert_eq!(s.histograms.get("h").map(|h| h.count), Some(1));
    }

    #[test]
    fn restore_then_snapshot_json_matches_the_source_recorder() {
        let src = Recorder::new(ObsOptions::logical());
        src.add("a.one", 1);
        src.gauge("b.two", -2);
        src.observe("c.three", 9);
        let parsed =
            crate::MetricsSnapshot::from_json(&src.snapshot_json()).expect("own output parses");
        let dst = Recorder::new(ObsOptions::logical());
        dst.add("ckpt.loaded", 1);
        dst.restore_metrics(&parsed);
        assert_eq!(dst.snapshot_json(), src.snapshot_json());
    }

    #[test]
    fn threaded_recording_is_safe_and_complete() {
        let rec = Recorder::new(ObsOptions::logical());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        rec.add("c", 1);
                        rec.observe("h", 7);
                    }
                });
            }
        });
        let s = rec.snapshot();
        assert_eq!(s.counters.get("c"), Some(&4000));
        assert_eq!(s.histograms.get("h").map(|h| h.count), Some(4000));
    }
}
