//! The [`Recorder`] handle: cheap when disabled, thread-safe when enabled.
//!
//! Since the causal-tracing layer, every span carries a process-unique id
//! and a parent link (the span open on the same lane when it began), and
//! cross-thread/cross-rank causality is expressed with **flow edges**
//! ([`Recorder::flow_start`] / [`Recorder::flow_step`] /
//! [`Recorder::flow_end`]) that serialise as Chrome `trace_event` flow
//! phases. Causal metadata lives in the *event* sinks only — metric
//! snapshots ([`Recorder::snapshot_json`]) are untouched, so the
//! logical-clock determinism contract is unchanged.

use crate::event::{Event, EventKind};
use crate::metrics::{Histogram, MetricsSnapshot, DEFAULT_BOUNDS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Observability options, carried inside `FocusConfig` (which is `Copy`,
/// so this must be too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsOptions {
    /// Record events and metrics. Off (the default) makes every recorder
    /// call a no-op branch.
    pub enabled: bool,
    /// Timestamp events with a logical tick counter instead of wall-clock
    /// microseconds, and exclude `sched.*` metrics from
    /// [`Recorder::snapshot_json`] — the deterministic mode in which two
    /// runs at any thread count produce byte-identical snapshots.
    pub logical_clock: bool,
}

impl ObsOptions {
    /// Enabled, wall-clock timestamps (the profiling mode).
    pub fn wall_clock() -> ObsOptions {
        ObsOptions {
            enabled: true,
            logical_clock: false,
        }
    }

    /// Enabled, logical-clock timestamps (the deterministic mode).
    pub fn logical() -> ObsOptions {
        ObsOptions {
            enabled: true,
            logical_clock: true,
        }
    }
}

/// Process-wide thread-lane assignment: each OS thread gets a small stable
/// id on first use, shared across recorders. Lane ids order by first
/// recording, so they are *not* deterministic across runs — which is why
/// deterministic instrumentation only emits events from the orchestrating
/// thread, and worker threads record order-free metrics instead.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

fn lane() -> u64 {
    LANE.with(|l| *l)
}

/// Lock helper that survives poisoning: a panicking task must not silence
/// the metrics of every later task (the data is counters, always valid).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One causal edge under construction: returned by
/// [`Recorder::flow_start`], consumed by [`Recorder::flow_step`] /
/// [`Recorder::flow_end`]. Chrome matches the `s`/`t`/`f` phases of one
/// arrow on (`cat`, `name`, `id`), so the handle carries all three; a
/// disabled recorder hands out [`Flow::NONE`] and every later call on it
/// is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Flow id shared by the `s`/`t`/`f` events of this edge; 0 = none.
    pub id: u64,
    /// Category the arrow is filed under.
    pub cat: &'static str,
    /// Name shared by every event of the arrow.
    pub name: &'static str,
}

impl Flow {
    /// The inert flow handle (disabled recorder, or "no causal edge").
    pub const NONE: Flow = Flow {
        id: 0,
        cat: "",
        name: "",
    };

    /// True when this handle carries no edge.
    pub fn is_none(self) -> bool {
        self.id == 0
    }
}

impl Default for Flow {
    fn default() -> Flow {
        Flow::NONE
    }
}

/// Compact causal context carried inside messages between simulated ranks
/// (and across any other hand-off): the span that originated the work plus
/// the flow edge that tracks it. The receiving side emits
/// [`Recorder::flow_step`]/[`Recorder::flow_end`] on `flow` — Perfetto
/// then draws the arrow, and `focus profile` follows it when extracting
/// the critical path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCtx {
    /// The span open where the work originated (0 = none).
    pub span: u64,
    /// The causal edge tracking the hand-off.
    pub flow: Flow,
}

impl SpanCtx {
    /// The inert context (no span, no edge).
    pub const NONE: SpanCtx = SpanCtx {
        span: 0,
        flow: Flow::NONE,
    };
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    logical: bool,
    ticks: AtomicU64,
    /// Allocator for span and flow ids; 0 is reserved for "none".
    next_id: AtomicU64,
    /// Open-span stacks per lane: the top is the lane's current span.
    stacks: Mutex<BTreeMap<u64, Vec<u64>>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, i64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    /// Named flow handles parked for later pickup (e.g. a checkpoint write
    /// whose resume happens later in the same process).
    parked_flows: Mutex<BTreeMap<u64, Flow>>,
    events: Mutex<Vec<Event>>,
}

impl Inner {
    /// Appends one event. The timestamp is taken *under the events lock*,
    /// so recording order and timestamp order always agree — the schema
    /// checkers reject traces where they don't.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        kind: EventKind,
        cat: &'static str,
        name: &'static str,
        id: u64,
        parent: u64,
        tid: u64,
        args: Vec<(&'static str, i64)>,
    ) {
        let mut events = lock(&self.events);
        let ts = if self.logical {
            self.ticks.fetch_add(1, Ordering::Relaxed)
        } else {
            self.start.elapsed().as_micros() as u64
        };
        events.push(Event {
            ts,
            tid,
            cat,
            name,
            kind,
            id,
            parent,
            args,
        });
    }

    fn current_span_of(&self, tid: u64) -> u64 {
        lock(&self.stacks)
            .get(&tid)
            .and_then(|s| s.last())
            .copied()
            .unwrap_or(0)
    }
}

/// The instrumentation handle threaded through the pipeline.
///
/// Cloning shares the underlying store (an `Arc`), so one recorder created
/// at the pipeline entry serves every layer and thread. A disabled
/// recorder holds no store at all: every call is a `None` check.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates a recorder per `options` (disabled options give the no-op
    /// recorder).
    pub fn new(options: ObsOptions) -> Recorder {
        if !options.enabled {
            return Recorder::disabled();
        }
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                logical: options.logical_clock,
                ticks: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
                stacks: Mutex::new(BTreeMap::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                parked_flows: Mutex::new(BTreeMap::new()),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op recorder (also `Recorder::default()`).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether anything is being recorded. Callers with non-trivial
    /// aggregation work should branch on this before computing what they
    /// would record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether timestamps are logical ticks (the deterministic mode).
    pub fn is_logical(&self) -> bool {
        self.inner.as_ref().map(|i| i.logical).unwrap_or(false)
    }

    /// Adds `delta` to counter `name`, saturating.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = lock(&inner.counters);
            let slot = counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            lock(&inner.gauges).insert(name, value);
        }
    }

    /// Records `value` into histogram `name` with the default power-of-two
    /// buckets.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.observe_with(name, value, DEFAULT_BOUNDS);
    }

    /// Records `value` into histogram `name` with custom bucket bounds.
    /// The first `observe` of a name fixes its bounds; later calls with
    /// different bounds still record into the existing histogram.
    pub fn observe_with(&self, name: &'static str, value: u64, bounds: &'static [u64]) {
        if let Some(inner) = &self.inner {
            lock(&inner.histograms)
                .entry(name)
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value);
        }
    }

    /// Samples the process's peak resident-set size (`VmHWM`) into the
    /// `mem.peak_rss_bytes` gauge. Pure-std `/proc/self/status` read on
    /// Linux, a no-op elsewhere and when the recorder is disabled. The
    /// `mem.` prefix is excluded from logical-clock snapshots (memory use
    /// legitimately varies with thread count and allocator mood).
    pub fn sample_peak_rss(&self) {
        if self.is_enabled() {
            if let Some(bytes) = crate::mem::peak_rss_bytes() {
                self.gauge("mem.peak_rss_bytes", bytes.min(i64::MAX as u64) as i64);
            }
        }
    }

    /// Opens a span; the returned guard records the matching end event on
    /// drop. Spans nest naturally through drop order.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        self.span_args(cat, name, &[])
    }

    /// [`Recorder::span`] with a structured integer payload on the begin
    /// event. The span gets a fresh id and a parent link to the span
    /// currently open on this lane.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span_args(
        &self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, i64)],
    ) -> SpanGuard<'_> {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                inner: None,
                cat,
                name,
                id: 0,
                tid: 0,
            };
        };
        let tid = lane();
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = {
            let mut stacks = lock(&inner.stacks);
            let stack = stacks.entry(tid).or_default();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        };
        inner.record(EventKind::Begin, cat, name, id, parent, tid, args.to_vec());
        SpanGuard {
            inner: self.inner.as_deref(),
            cat,
            name,
            id,
            tid,
        }
    }

    /// The id of the span currently open on this thread's lane (0 when
    /// none or disabled) — what a hand-off stamps into its [`SpanCtx`].
    pub fn current_span(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.current_span_of(lane()),
        }
    }

    /// Captures the current causal context: the span open on this lane
    /// plus `flow` as the tracking edge.
    pub fn span_ctx(&self, flow: Flow) -> SpanCtx {
        SpanCtx {
            span: self.current_span(),
            flow,
        }
    }

    /// Starts a causal edge (`ph: "s"`) out of the current span and
    /// returns its handle. Pass the handle (inside a [`SpanCtx`], a
    /// message, a task) to wherever the work continues; the consumer calls
    /// [`Recorder::flow_step`]/[`Recorder::flow_end`] to complete the
    /// arrow.
    pub fn flow_start(
        &self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, i64)],
    ) -> Flow {
        let Some(inner) = &self.inner else {
            return Flow::NONE;
        };
        let tid = lane();
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = inner.current_span_of(tid);
        inner.record(EventKind::FlowStart, cat, name, id, parent, tid, args.to_vec());
        Flow { id, cat, name }
    }

    /// Records an intermediate hop (`ph: "t"`) on `flow` — e.g. a
    /// retransmission attempt. No-op for [`Flow::NONE`].
    pub fn flow_step(&self, flow: Flow, args: &[(&'static str, i64)]) {
        if flow.is_none() {
            return;
        }
        if let Some(inner) = &self.inner {
            let tid = lane();
            let parent = inner.current_span_of(tid);
            inner.record(
                EventKind::FlowStep,
                flow.cat,
                flow.name,
                flow.id,
                parent,
                tid,
                args.to_vec(),
            );
        }
    }

    /// Terminates `flow` (`ph: "f"`) inside the current span: this span's
    /// progress causally followed from the flow's origin. No-op for
    /// [`Flow::NONE`].
    pub fn flow_end(&self, flow: Flow, args: &[(&'static str, i64)]) {
        if flow.is_none() {
            return;
        }
        if let Some(inner) = &self.inner {
            let tid = lane();
            let parent = inner.current_span_of(tid);
            inner.record(
                EventKind::FlowEnd,
                flow.cat,
                flow.name,
                flow.id,
                parent,
                tid,
                args.to_vec(),
            );
        }
    }

    /// Parks a flow handle under `key` for later pickup with
    /// [`Recorder::flow_take`] — the idiom for causal edges whose
    /// consumer is a *later call* on the same recorder rather than a
    /// value hand-off (e.g. a checkpoint write linked to the resume that
    /// loads it). Last park under a key wins. No-op for [`Flow::NONE`]
    /// or a disabled recorder.
    pub fn flow_park(&self, key: u64, flow: Flow) {
        if flow.is_none() {
            return;
        }
        if let Some(inner) = &self.inner {
            lock(&inner.parked_flows).insert(key, flow);
        }
    }

    /// Takes the flow parked under `key`, if any. A fresh recorder (e.g.
    /// a cross-process resume) has no parked flows, so consumers simply
    /// skip the link — never a dangling causal edge.
    pub fn flow_take(&self, key: u64) -> Option<Flow> {
        self.inner
            .as_ref()
            .and_then(|inner| lock(&inner.parked_flows).remove(&key))
    }

    /// Records a point event with a structured integer payload.
    pub fn instant(&self, cat: &'static str, name: &'static str, args: &[(&'static str, i64)]) {
        if let Some(inner) = &self.inner {
            let tid = lane();
            let parent = inner.current_span_of(tid);
            inner.record(EventKind::Instant, cat, name, 0, parent, tid, args.to_vec());
        }
    }

    /// Samples a counter time series (rendered as a counter track in
    /// Perfetto) — e.g. the edge-cut trajectory across bisection steps.
    pub fn counter_sample(&self, cat: &'static str, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.record(
                EventKind::Counter,
                cat,
                name,
                0,
                0,
                lane(),
                vec![("value", value)],
            );
        }
    }

    /// A consistent copy of every metric recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => MetricsSnapshot {
                counters: lock(&inner.counters).clone(),
                gauges: lock(&inner.gauges).clone(),
                histograms: lock(&inner.histograms).clone(),
            },
        }
    }

    /// The canonical snapshot serialisation. In logical-clock mode the
    /// scheduling-dependent `sched.*`, checkpoint-lifecycle `ckpt.*`,
    /// memory `mem.*`, out-of-core `ooc.*` and alignment-kernel-dependent
    /// (`align.prefilter.*`/`align.kernel.*`) metrics are excluded, which
    /// makes the output **byte-identical across thread counts, across
    /// crash/resume, across memory budgets and across `--align-kernel`
    /// settings** (the determinism contracts); in wall-clock mode
    /// everything is included.
    pub fn snapshot_json(&self) -> String {
        let snapshot = self.snapshot();
        if self.is_logical() {
            snapshot
                .without_scheduling()
                .without_checkpointing()
                .without_kernel_dependent()
                .without_memory()
                .without_ooc()
                .to_json()
        } else {
            snapshot.to_json()
        }
    }

    /// Replaces the recorded pipeline metrics with the contents of
    /// `snapshot` — the resume path: a checkpoint embeds the cumulative
    /// metrics of the run that wrote it, and loading it must leave the
    /// recorder exactly as if those phases had just executed. The
    /// recorder's own `ckpt.*`, `sched.*`, `mem.*`, `ooc.*` and
    /// kernel-dependent (`align.prefilter.*`/`align.kernel.*`) entries are
    /// kept (they describe *this* process's checkpoint traffic,
    /// scheduling, memory, spill traffic and dispatched alignment kernel,
    /// which a restore must not falsify),
    /// and any such entries inside `snapshot` are ignored for the same
    /// reason. No-op when disabled.
    pub fn restore_metrics(&self, snapshot: &MetricsSnapshot) {
        let Some(inner) = &self.inner else {
            return;
        };
        let keep = |k: &str| {
            k.starts_with(crate::CKPT_PREFIX)
                || k.starts_with(crate::SCHED_PREFIX)
                || k.starts_with(crate::MEM_PREFIX)
                || k.starts_with(crate::OOC_PREFIX)
                || crate::KERNEL_PREFIXES.iter().any(|p| k.starts_with(p))
        };
        let mut counters = lock(&inner.counters);
        counters.retain(|k, _| keep(k));
        for (&k, &v) in &snapshot.counters {
            if !keep(k) {
                counters.insert(k, v);
            }
        }
        drop(counters);
        let mut gauges = lock(&inner.gauges);
        gauges.retain(|k, _| keep(k));
        for (&k, &v) in &snapshot.gauges {
            if !keep(k) {
                gauges.insert(k, v);
            }
        }
        drop(gauges);
        let mut histograms = lock(&inner.histograms);
        histograms.retain(|k, _| keep(k));
        for (&k, h) in &snapshot.histograms {
            if !keep(k) {
                histograms.insert(k, h.clone());
            }
        }
    }

    /// A copy of every event recorded so far, in recording order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.events).clone(),
        }
    }
}

/// RAII guard for an open span; records the end event on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    inner: Option<&'a Inner>,
    cat: &'static str,
    name: &'static str,
    id: u64,
    tid: u64,
}

impl SpanGuard<'_> {
    /// The span's id (0 when the recorder is disabled) — what causal
    /// edges and resumed phases link against.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner {
            {
                let mut stacks = lock(&inner.stacks);
                if let Some(stack) = stacks.get_mut(&self.tid) {
                    if let Some(pos) = stack.iter().rposition(|&x| x == self.id) {
                        stack.remove(pos);
                    }
                }
            }
            inner.record(EventKind::End, self.cat, self.name, self.id, 0, self.tid, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.add("c", 1);
        rec.gauge("g", 2);
        rec.observe("h", 3);
        rec.instant("t", "x", &[("a", 1)]);
        rec.sample_peak_rss();
        let flow = rec.flow_start("t", "edge", &[]);
        assert!(flow.is_none());
        rec.flow_end(flow, &[]);
        {
            let _s = rec.span("t", "s");
        }
        assert_eq!(rec.current_span(), 0);
        assert!(rec.snapshot().is_empty());
        assert!(rec.events().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("c", 2);
        rec.add("c", 3);
        rec.gauge("g", 1);
        rec.gauge("g", -7);
        rec.observe("h", 4);
        rec.observe("h", 5);
        let s = rec.snapshot();
        assert_eq!(s.counters.get("c"), Some(&5));
        assert_eq!(s.gauges.get("g"), Some(&-7));
        let h = s.histograms.get("h").expect("histogram recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
    }

    #[test]
    fn counters_saturate() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("c", u64::MAX);
        rec.add("c", 10);
        assert_eq!(rec.snapshot().counters.get("c"), Some(&u64::MAX));
    }

    #[test]
    fn spans_emit_balanced_begin_end_with_logical_timestamps() {
        let rec = Recorder::new(ObsOptions::logical());
        {
            let _outer = rec.span_args("cat", "outer", &[("k", 9)]);
            let _inner = rec.span("cat", "inner");
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            [
                EventKind::Begin,
                EventKind::Begin,
                EventKind::End,
                EventKind::End
            ]
        );
        // Drop order closes inner before outer.
        assert_eq!(events[2].name, "inner");
        assert_eq!(events[3].name, "outer");
        // Logical clock: strictly increasing ticks starting at 0.
        let ts: Vec<u64> = events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 1, 2, 3]);
        assert_eq!(events[0].args, vec![("k", 9)]);
    }

    #[test]
    fn spans_carry_ids_and_parent_links() {
        let rec = Recorder::new(ObsOptions::logical());
        let (outer_id, inner_id) = {
            let outer = rec.span("cat", "outer");
            assert_eq!(rec.current_span(), outer.id());
            let inner = rec.span("cat", "inner");
            assert_eq!(rec.current_span(), inner.id());
            (outer.id(), inner.id())
        };
        assert_ne!(outer_id, 0);
        assert_ne!(inner_id, 0);
        assert_ne!(outer_id, inner_id);
        assert_eq!(rec.current_span(), 0);
        let events = rec.events();
        // Begin outer: root (parent 0); begin inner: parent = outer.
        assert_eq!(events[0].id, outer_id);
        assert_eq!(events[0].parent, 0);
        assert_eq!(events[1].id, inner_id);
        assert_eq!(events[1].parent, outer_id);
        // Ends reference the same ids.
        assert_eq!(events[2].id, inner_id);
        assert_eq!(events[3].id, outer_id);
    }

    #[test]
    fn flow_edges_share_identity_and_bind_to_enclosing_spans() {
        let rec = Recorder::new(ObsOptions::logical());
        let flow;
        let origin_id;
        {
            let origin = rec.span("dist", "send_side");
            origin_id = origin.id();
            flow = rec.flow_start("dist", "msg", &[("rank", 3)]);
            assert!(!flow.is_none());
        }
        let consumer_id;
        {
            let consumer = rec.span("dist", "recv_side");
            consumer_id = consumer.id();
            rec.flow_step(flow, &[("attempt", 2)]);
            rec.flow_end(flow, &[]);
        }
        let events = rec.events();
        let s = events.iter().find(|e| e.kind == EventKind::FlowStart).unwrap();
        let t = events.iter().find(|e| e.kind == EventKind::FlowStep).unwrap();
        let f = events.iter().find(|e| e.kind == EventKind::FlowEnd).unwrap();
        assert_eq!(s.id, flow.id);
        assert_eq!(t.id, flow.id);
        assert_eq!(f.id, flow.id);
        // Same (cat, name) triple so Perfetto draws one arrow.
        assert_eq!((s.cat, s.name), ("dist", "msg"));
        assert_eq!((f.cat, f.name), ("dist", "msg"));
        // Bound to the spans they were emitted inside.
        assert_eq!(s.parent, origin_id);
        assert_eq!(t.parent, consumer_id);
        assert_eq!(f.parent, consumer_id);
    }

    #[test]
    fn instants_record_their_enclosing_span() {
        let rec = Recorder::new(ObsOptions::logical());
        let id = {
            let span = rec.span("cat", "outer");
            rec.instant("cat", "marker", &[]);
            span.id()
        };
        let events = rec.events();
        let marker = events.iter().find(|e| e.kind == EventKind::Instant).unwrap();
        assert_eq!(marker.parent, id);
    }

    #[test]
    fn span_ctx_captures_current_span_and_flow() {
        let rec = Recorder::new(ObsOptions::logical());
        let span = rec.span("dist", "phase");
        let flow = rec.flow_start("dist", "msg", &[]);
        let ctx = rec.span_ctx(flow);
        assert_eq!(ctx.span, span.id());
        assert_eq!(ctx.flow, flow);
        drop(span);
        assert_eq!(SpanCtx::NONE.span, 0);
        assert!(SpanCtx::NONE.flow.is_none());
    }

    #[test]
    fn parked_flows_survive_until_taken_once() {
        let rec = Recorder::new(ObsOptions::logical());
        let flow = rec.flow_start("ckpt", "ckpt.save", &[]);
        rec.flow_park(7, flow);
        assert_eq!(rec.flow_take(7), Some(flow));
        assert_eq!(rec.flow_take(7), None, "taking consumes the handle");
        // Disabled recorders and NONE flows park nothing.
        rec.flow_park(8, Flow::NONE);
        assert_eq!(rec.flow_take(8), None);
        let off = Recorder::disabled();
        off.flow_park(9, flow);
        assert_eq!(off.flow_take(9), None);
    }

    #[test]
    fn clones_share_the_store() {
        let rec = Recorder::new(ObsOptions::logical());
        let other = rec.clone();
        other.add("c", 1);
        assert_eq!(rec.snapshot().counters.get("c"), Some(&1));
    }

    #[test]
    fn logical_snapshot_json_excludes_sched_metrics() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("exec.tasks", 4);
        rec.add("sched.exec.steals", 2);
        let json = rec.snapshot_json();
        assert!(json.contains("exec.tasks"));
        assert!(!json.contains("sched.exec.steals"));

        let wall = Recorder::new(ObsOptions::wall_clock());
        wall.add("sched.exec.steals", 2);
        assert!(wall.snapshot_json().contains("sched.exec.steals"));
    }

    #[test]
    fn logical_snapshot_json_excludes_ckpt_metrics() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("focus.contigs", 4);
        rec.add("ckpt.saved", 2);
        let json = rec.snapshot_json();
        assert!(json.contains("focus.contigs"));
        assert!(!json.contains("ckpt.saved"));

        let wall = Recorder::new(ObsOptions::wall_clock());
        wall.add("ckpt.saved", 2);
        assert!(wall.snapshot_json().contains("ckpt.saved"));
    }

    #[test]
    fn logical_snapshot_json_excludes_mem_metrics() {
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("focus.contigs", 4);
        rec.gauge("mem.peak_rss_bytes", 123456);
        let json = rec.snapshot_json();
        assert!(json.contains("focus.contigs"));
        assert!(!json.contains("mem.peak_rss_bytes"));

        let wall = Recorder::new(ObsOptions::wall_clock());
        wall.gauge("mem.peak_rss_bytes", 123456);
        assert!(wall.snapshot_json().contains("mem.peak_rss_bytes"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sample_peak_rss_records_a_positive_gauge_on_linux() {
        let rec = Recorder::new(ObsOptions::wall_clock());
        rec.sample_peak_rss();
        let v = rec
            .snapshot()
            .gauges
            .get("mem.peak_rss_bytes")
            .copied()
            .expect("VmHWM is readable on Linux");
        assert!(v > 0);
    }

    #[test]
    fn restore_metrics_replaces_pipeline_metrics_and_keeps_local_bookkeeping() {
        let saved = {
            let rec = Recorder::new(ObsOptions::logical());
            rec.add("align.pairs", 100);
            rec.gauge("focus.k", 4);
            rec.observe("h", 3);
            rec.snapshot()
        };
        let rec = Recorder::new(ObsOptions::logical());
        rec.add("align.pairs", 1); // stale partial value, must be replaced
        rec.add("stale.other", 5); // not in the snapshot, must vanish
        rec.add("ckpt.loaded", 1); // this process's bookkeeping, must stay
        rec.add("sched.exec.steals", 2);
        rec.gauge("mem.peak_rss_bytes", 777); // this process's memory, must stay
        rec.restore_metrics(&saved);
        let s = rec.snapshot();
        assert_eq!(s.counters.get("align.pairs"), Some(&100));
        assert_eq!(s.counters.get("stale.other"), None);
        assert_eq!(s.counters.get("ckpt.loaded"), Some(&1));
        assert_eq!(s.counters.get("sched.exec.steals"), Some(&2));
        assert_eq!(s.gauges.get("mem.peak_rss_bytes"), Some(&777));
        assert_eq!(s.gauges.get("focus.k"), Some(&4));
        assert_eq!(s.histograms.get("h").map(|h| h.count), Some(1));
    }

    #[test]
    fn restore_then_snapshot_json_matches_the_source_recorder() {
        let src = Recorder::new(ObsOptions::logical());
        src.add("a.one", 1);
        src.gauge("b.two", -2);
        src.observe("c.three", 9);
        let parsed =
            crate::MetricsSnapshot::from_json(&src.snapshot_json()).expect("own output parses");
        let dst = Recorder::new(ObsOptions::logical());
        dst.add("ckpt.loaded", 1);
        dst.restore_metrics(&parsed);
        assert_eq!(dst.snapshot_json(), src.snapshot_json());
    }

    #[test]
    fn threaded_recording_is_safe_and_complete() {
        let rec = Recorder::new(ObsOptions::logical());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        rec.add("c", 1);
                        rec.observe("h", 7);
                    }
                });
            }
        });
        let s = rec.snapshot();
        assert_eq!(s.counters.get("c"), Some(&4000));
        assert_eq!(s.histograms.get("h").map(|h| h.count), Some(4000));
    }
}
