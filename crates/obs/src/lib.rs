//! # fc-obs — structured tracing, metrics and profiling for the pipeline
//!
//! The paper's evaluation (§V–§VI) is entirely about *measuring* the
//! pipeline — edge cut, balance, phase speedups, recovery cost. This crate
//! is the instrumentation substrate those measurements flow through: a
//! [`Recorder`] handle that collects **spans** (nested, phase/task scoped),
//! **counters**, **gauges** and fixed-bucket **histograms**, and exports
//! them through three sinks:
//!
//! * a human-readable end-of-run report ([`human_report`]),
//! * JSON-lines events ([`write_jsonl`]),
//! * Chrome `trace_event` JSON ([`write_chrome_trace`]) viewable in
//!   Perfetto (`ui.perfetto.dev`).
//!
//! The crate has **zero dependencies** (JSON is hand-written and
//! hand-parsed) so every other crate in the workspace can depend on it
//! without widening the build graph.
//!
//! ## Cost model
//!
//! A disabled recorder ([`Recorder::disabled`], the default everywhere) is
//! a `None` inside a struct: every record call is one branch and returns.
//! Hot loops are never instrumented per item — the pipeline records
//! *aggregates* (one `PairStats`-shaped bundle per alignment task, one
//! observation per coarsening level, …), so the enabled path costs a mutex
//! acquisition per task, not per k-mer.
//!
//! ## Determinism contract
//!
//! The deterministic parallel engine (`fc-exec`) guarantees bit-identical
//! *results* at any thread count, so every metric derived from algorithm
//! results (candidates verified, edges cut, nodes coarsened, messages
//! simulated …) is thread-count-invariant. Metrics that describe the
//! *schedule* itself (steals, per-worker busy time, scratch creations) are
//! not — they live under the reserved `sched.` name prefix. In
//! logical-clock mode ([`ObsOptions::logical`]) the snapshot serialisation
//! ([`Recorder::snapshot_json`]) excludes `sched.*` entries and timestamps
//! are logical ticks, making the metrics snapshot **byte-identical across
//! thread counts** — observability doubles as a correctness oracle
//! (proptest-verified in `tests/observability.rs`).

pub mod budget;
pub mod event;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod schema;
pub mod sink;

pub use budget::{BudgetError, MemoryBudget, Reservation};
pub use event::{Event, EventKind};
pub use mem::peak_rss_bytes;
pub use metrics::{Histogram, MetricsSnapshot, DEFAULT_BOUNDS};
pub use profile::{profile_chrome_trace, ProfileReport, SegmentKind};
pub use recorder::{Flow, ObsOptions, Recorder, SpanCtx, SpanGuard};
pub use schema::{check_chrome_trace, check_jsonl_events, check_metrics_snapshot, ObsError};
pub use sink::{human_report, write_chrome_trace, write_jsonl};

/// Reserved metric-name prefix for scheduling-dependent metrics (steals,
/// per-worker busy time …). Metrics under this prefix are excluded from
/// logical-clock snapshots because they legitimately vary with the thread
/// count and machine load; everything else must be deterministic.
pub const SCHED_PREFIX: &str = "sched.";

/// Reserved metric-name prefix for checkpoint-lifecycle metrics (saves,
/// loads, detected corruptions, degradations …). Metrics under this prefix
/// are excluded from logical-clock snapshots because they legitimately
/// differ between an uninterrupted run and a crash-and-resume run of the
/// same input — the checkpoint determinism contract compares the *rest* of
/// the snapshot byte for byte.
pub const CKPT_PREFIX: &str = "ckpt.";

/// Reserved metric-name prefix for process-memory metrics (the peak-RSS
/// gauge sampled at phase boundaries). Resident-set sizes legitimately
/// vary with thread count, allocator behaviour and platform while results
/// stay bit-identical, so logical-clock snapshots exclude them.
pub const MEM_PREFIX: &str = "mem.";

/// Reserved metric-name prefixes for alignment-kernel-dependent metrics
/// (prefilter hit rates, exact-path shortcuts, SIMD batch sizes …). They
/// describe *how* the dispatched alignment kernel arrived at the result,
/// not the result itself: they legitimately vary with `--align-kernel` and
/// with CPU feature detection while overlaps, contigs and every other
/// metric stay bit-identical, so logical-clock snapshots exclude them.
pub const KERNEL_PREFIXES: &[&str] = &["align.prefilter.", "align.kernel."];

/// Reserved metric-name prefix for out-of-core spill metrics (runs
/// spilled, bytes written, corrupt runs recomputed, in-core fallbacks …).
/// Metrics under this prefix are excluded from logical-clock snapshots
/// because they legitimately vary with the memory budget, disk faults and
/// resume history while contigs and every other metric stay bit-identical
/// — the out-of-core determinism contract compares the *rest* of the
/// snapshot byte for byte.
pub const OOC_PREFIX: &str = "ooc.";
