//! Minimal hand-rolled JSON *writing* helpers (the crate is
//! zero-dependency by design; parsing lives in [`crate::schema`]).
//!
//! Only the shapes the sinks need are supported: strings, integers, and
//! flat objects of integers. Serialisation is fully deterministic — no
//! floats, no hash-order iteration.

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a `"key": ` prefix (escaped key, colon, space).
pub fn push_json_key(out: &mut String, key: &str) {
    push_json_str(out, key);
    out.push_str(": ");
}

/// Appends a flat JSON object of integer values: `{"a": 1, "b": -2}`.
pub fn push_json_int_obj(out: &mut String, entries: &[(&str, i64)]) {
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_key(out, k);
        out.push_str(&v.to_string());
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_json_str(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escaped("plain"), "\"plain\"");
        assert_eq!(escaped("a\"b"), "\"a\\\"b\"");
        assert_eq!(escaped("a\\b"), "\"a\\\\b\"");
        assert_eq!(escaped("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(escaped("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn int_object_shape() {
        let mut out = String::new();
        push_json_int_obj(&mut out, &[("x", 1), ("y", -2)]);
        assert_eq!(out, "{\"x\": 1, \"y\": -2}");
        let mut out = String::new();
        push_json_int_obj(&mut out, &[]);
        assert_eq!(out, "{}");
    }
}
