//! The critical-path profiler behind `focus profile`: a pure-std analyzer
//! over Chrome `trace_event` documents produced by the `--trace` sink.
//!
//! The analyzer reconstructs the span DAG (parent links from the causal
//! `id`/`parent` fields, cross-span causal edges from the `s`/`t`/`f`
//! flow events), aggregates self/total time per phase name, category and
//! rank, and extracts the **critical path**: the gating chain of work from
//! run start to the last thing that finished. Walking backwards from the
//! latest-ending span, each step asks "what had to finish for this to
//! finish?" — the latest-ending child, the latest-arriving causal edge, or
//! the preceding span on the same lane — and attributes the uncovered time
//! to compute, wait, or retry.
//!
//! Everything is integer arithmetic over the trace's own timestamps
//! (logical ticks or microseconds), and every container iterates in
//! sorted order, so the same trace always produces byte-identical reports
//! — `--json` output is CI-diffable.

use crate::json::{push_json_key, push_json_str};
use crate::schema::{self, ObsError, Value};
use std::collections::{BTreeMap, BTreeSet};

/// What a critical-path segment's time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// Inside a span doing work.
    Compute,
    /// A gap the chain had to sit out (scheduling, transmission, an
    /// upstream span that had not finished yet).
    Wait,
    /// Time caused by fault handling: retransmissions, backoff, recovery
    /// rescans, speculative re-execution.
    Retry,
}

impl SegmentKind {
    /// Stable report name.
    pub fn as_str(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Wait => "wait",
            SegmentKind::Retry => "retry",
        }
    }
}

/// Substrings that mark a span or flow as fault-handling work; time on
/// the critical path inside them is attributed to retry, not compute.
const RETRY_MARKERS: [&str; 5] = ["retransmit", "retry", "backoff", "recover", "speculat"];

fn is_retryish(name: &str) -> bool {
    RETRY_MARKERS.iter().any(|m| name.contains(m))
}

/// One segment of the critical path: `[start, end]` attributed to `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Name of the span (or flow) the time belongs to.
    pub name: String,
    /// Its category.
    pub cat: String,
    /// The span id the segment lies inside (0 for gap segments).
    pub span: u64,
    /// Segment start timestamp.
    pub start: u64,
    /// Segment end timestamp.
    pub end: u64,
    /// What the time was spent on.
    pub kind: SegmentKind,
}

impl Segment {
    /// The segment's duration in trace time units.
    pub fn dur(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Self/total aggregate for one span name or category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeAgg {
    /// Number of spans aggregated.
    pub count: u64,
    /// Sum of span durations (children included).
    pub total: u64,
    /// Sum of durations minus time covered by child spans.
    pub self_time: u64,
}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Span {
    id: u64,
    parent: u64,
    tid: u64,
    name: String,
    cat: String,
    start: u64,
    end: u64,
    rank: Option<i64>,
}

/// The profiler's output: aggregates, the critical path, and the
/// compute/wait/retry attribution. Render with
/// [`ProfileReport::to_json`] (byte-stable) or
/// [`ProfileReport::human_table`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Number of spans reconstructed from the trace.
    pub spans: u64,
    /// Number of causal edges (`s` flow events).
    pub flows: u64,
    /// End-to-end run wall: latest event timestamp minus earliest, in the
    /// trace's own time units (ticks or µs).
    pub run_wall: u64,
    /// Self/total time per span name ("phase").
    pub by_name: BTreeMap<String, TimeAgg>,
    /// Self/total time per category ("task class").
    pub by_cat: BTreeMap<String, TimeAgg>,
    /// Total span time per rank (spans carrying a `rank` arg).
    pub by_rank: BTreeMap<i64, u64>,
    /// The gating chain from run start to the last completion, in
    /// chronological order.
    pub critical_path: Vec<Segment>,
    /// Time attributed to each kind along the critical path.
    pub attribution: BTreeMap<SegmentKind, u64>,
}

impl ProfileReport {
    /// Sum of critical-path segment durations.
    pub fn critical_path_total(&self) -> u64 {
        self.critical_path.iter().map(Segment::dur).sum()
    }

    /// Time of one attribution bucket (0 when absent).
    pub fn attributed(&self, kind: SegmentKind) -> u64 {
        self.attribution.get(&kind).copied().unwrap_or(0)
    }

    /// Deterministic JSON rendering: sorted keys, integers only. The same
    /// trace always produces byte-identical output, so CI can diff
    /// reports across commits.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"focus-profile-v1\",\n");
        out.push_str(&format!("  \"spans\": {},\n", self.spans));
        out.push_str(&format!("  \"flows\": {},\n", self.flows));
        out.push_str(&format!("  \"run_wall\": {},\n", self.run_wall));
        out.push_str(&format!(
            "  \"critical_path_total\": {},\n",
            self.critical_path_total()
        ));
        out.push_str("  \"attribution\": {");
        for (i, kind) in [SegmentKind::Compute, SegmentKind::Wait, SegmentKind::Retry]
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_key(&mut out, kind.as_str());
            out.push_str(&self.attributed(*kind).to_string());
        }
        out.push_str("},\n");
        let agg_section = |out: &mut String, title: &str, map: &BTreeMap<String, TimeAgg>| {
            out.push_str("  ");
            push_json_key(out, title);
            out.push('{');
            for (i, (k, a)) in map.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("    ");
                push_json_key(out, k);
                out.push_str(&format!(
                    "{{\"count\": {}, \"total\": {}, \"self\": {}}}",
                    a.count, a.total, a.self_time
                ));
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("},\n");
        };
        agg_section(&mut out, "by_name", &self.by_name);
        agg_section(&mut out, "by_cat", &self.by_cat);
        out.push_str("  \"by_rank\": {");
        for (i, (rank, total)) in self.by_rank.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_key(&mut out, &rank.to_string());
            out.push_str(&total.to_string());
        }
        out.push_str("},\n");
        out.push_str("  \"critical_path\": [");
        for (i, seg) in self.critical_path.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {");
            push_json_key(&mut out, "name");
            push_json_str(&mut out, &seg.name);
            out.push_str(", ");
            push_json_key(&mut out, "cat");
            push_json_str(&mut out, &seg.cat);
            out.push_str(&format!(
                ", \"span\": {}, \"start\": {}, \"end\": {}, \"dur\": {}, ",
                seg.span,
                seg.start,
                seg.end,
                seg.dur()
            ));
            push_json_key(&mut out, "kind");
            push_json_str(&mut out, seg.kind.as_str());
            out.push('}');
        }
        if !self.critical_path.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-readable report: the critical path with per-segment
    /// attribution, then the per-phase/per-rank aggregates. Times are in
    /// the trace's own units (logical ticks or microseconds).
    pub fn human_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} spans, {} causal edges, run wall {}\n",
            self.spans, self.flows, self.run_wall
        ));
        out.push_str(&format!(
            "critical path: {} of {} ({} segments)\n",
            self.critical_path_total(),
            self.run_wall,
            self.critical_path.len()
        ));
        out.push_str(&format!(
            "attribution:   compute={} wait={} retry={}\n",
            self.attributed(SegmentKind::Compute),
            self.attributed(SegmentKind::Wait),
            self.attributed(SegmentKind::Retry)
        ));
        out.push_str("segments (chronological):\n");
        for seg in &self.critical_path {
            out.push_str(&format!(
                "  {:>8} ..{:>8}  {:>8}  {:<8}  {}\n",
                seg.start,
                seg.end,
                seg.dur(),
                seg.kind.as_str(),
                seg.name
            ));
        }
        let width = self
            .by_name
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max("phase".len());
        out.push_str(&format!(
            "per-phase:\n  {:<width$}  {:>6}  {:>10}  {:>10}\n",
            "phase", "count", "total", "self"
        ));
        for (name, agg) in &self.by_name {
            out.push_str(&format!(
                "  {name:<width$}  {:>6}  {:>10}  {:>10}\n",
                agg.count, agg.total, agg.self_time
            ));
        }
        if !self.by_rank.is_empty() {
            out.push_str("per-rank:\n");
            for (rank, total) in &self.by_rank {
                out.push_str(&format!("  rank {rank:<4}  {total}\n"));
            }
        }
        out
    }
}

/// An extracted trace event (only the fields the profiler uses).
struct Ev {
    ts: u64,
    tid: u64,
    ph: String,
    cat: String,
    name: String,
    id: u64,
    parent: u64,
    args: BTreeMap<String, i64>,
}

fn extract_events(input: &str) -> Result<Vec<Ev>, ObsError> {
    let value = schema::parse_json(input)?;
    let root = value.as_object().ok_or_else(|| ObsError::Schema {
        detail: "trace root must be an object".to_string(),
    })?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| ObsError::Schema {
            detail: "missing \"traceEvents\" array".to_string(),
        })?;
    let mut out = Vec::with_capacity(events.len());
    for item in events {
        let obj = item.as_object().ok_or_else(|| ObsError::Schema {
            detail: "trace event must be an object".to_string(),
        })?;
        let int = |key: &str| obj.get(key).and_then(Value::as_int).unwrap_or(0).max(0) as u64;
        let text = |key: &str| {
            obj.get(key)
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string()
        };
        let mut args = BTreeMap::new();
        if let Some(a) = obj.get("args").and_then(Value::as_object) {
            for (k, v) in a {
                if let Some(i) = v.as_int() {
                    args.insert(k.clone(), i);
                }
            }
        }
        out.push(Ev {
            ts: int("ts"),
            tid: int("tid"),
            ph: text("ph"),
            cat: text("cat"),
            name: text("name"),
            id: int("id"),
            parent: int("parent"),
            args,
        });
    }
    Ok(out)
}

/// Profiles a Chrome `trace_event` document (the `--trace` sink output).
///
/// The document is first validated with the same checker `focus obs-check`
/// uses — schema violations, unbalanced spans, and dangling causal edges
/// are typed errors, never a partial report. The reconstructed span DAG is
/// additionally checked for parent-link cycles.
pub fn profile_chrome_trace(input: &str) -> Result<ProfileReport, ObsError> {
    schema::check_chrome_trace(input)?;
    let events = extract_events(input)?;

    // --- Reconstruct spans (per-lane stacks) and flow edges. ---
    let mut spans: BTreeMap<u64, Span> = BTreeMap::new();
    let mut stacks: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    // Synthetic ids for traces without causal fields, above any real id.
    let mut next_synth = events.iter().map(|e| e.id).max().unwrap_or(0) + 1;
    // Flow id -> (origin span, departure ts, flow name, cat).
    let mut flow_origin: BTreeMap<u64, (u64, u64, String, String)> = BTreeMap::new();
    // Arrivals per receiving span: (ts, flow id, attempts arg).
    let mut arrivals: BTreeMap<u64, Vec<(u64, u64, i64)>> = BTreeMap::new();
    let (mut min_ts, mut max_ts) = (u64::MAX, 0u64);
    for e in &events {
        min_ts = min_ts.min(e.ts);
        max_ts = max_ts.max(e.ts);
        let stack = stacks.entry(e.tid).or_default();
        match e.ph.as_str() {
            "B" => {
                let id = if e.id != 0 {
                    e.id
                } else {
                    next_synth += 1;
                    next_synth - 1
                };
                let parent = if e.parent != 0 {
                    e.parent
                } else {
                    stack.last().copied().unwrap_or(0)
                };
                spans.insert(
                    id,
                    Span {
                        id,
                        parent,
                        tid: e.tid,
                        name: e.name.clone(),
                        cat: e.cat.clone(),
                        start: e.ts,
                        end: e.ts,
                        rank: e.args.get("rank").copied(),
                    },
                );
                stack.push(id);
            }
            "E" => {
                // check_chrome_trace proved balance, so the pop matches.
                if let Some(id) = stack.pop() {
                    if let Some(span) = spans.get_mut(&id) {
                        span.end = e.ts;
                    }
                }
            }
            "s" => {
                let enclosing = if e.parent != 0 {
                    e.parent
                } else {
                    stack.last().copied().unwrap_or(0)
                };
                flow_origin
                    .entry(e.id)
                    .or_insert((enclosing, e.ts, e.name.clone(), e.cat.clone()));
            }
            "t" | "f" => {
                let enclosing = if e.parent != 0 {
                    e.parent
                } else {
                    stack.last().copied().unwrap_or(0)
                };
                let attempts = e.args.get("attempts").copied().unwrap_or(0);
                arrivals
                    .entry(enclosing)
                    .or_default()
                    .push((e.ts, e.id, attempts));
            }
            _ => {}
        }
    }
    if spans.is_empty() {
        return Err(ObsError::Schema {
            detail: "trace contains no spans to profile".to_string(),
        });
    }

    // --- Span DAG must be acyclic (parent links only ever point at
    //     earlier spans in a well-formed trace). ---
    for &start in spans.keys() {
        let mut cur = start;
        let mut steps = 0usize;
        while cur != 0 {
            cur = spans.get(&cur).map(|s| s.parent).unwrap_or(0);
            steps += 1;
            if steps > spans.len() {
                return Err(ObsError::Schema {
                    detail: format!("span parent links contain a cycle through id {start}"),
                });
            }
        }
    }

    // --- Aggregates: self/total per name, cat, rank. ---
    let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
    for span in spans.values() {
        if span.parent != 0 {
            if let Some(parent) = spans.get(&span.parent) {
                // Clamp to the parent's interval so malformed nesting can
                // never produce negative self-time.
                let overlap = span
                    .end
                    .min(parent.end)
                    .saturating_sub(span.start.max(parent.start));
                *child_time.entry(span.parent).or_insert(0) += overlap;
            }
        }
    }
    let mut by_name: BTreeMap<String, TimeAgg> = BTreeMap::new();
    let mut by_cat: BTreeMap<String, TimeAgg> = BTreeMap::new();
    let mut by_rank: BTreeMap<i64, u64> = BTreeMap::new();
    for span in spans.values() {
        let dur = span.end.saturating_sub(span.start);
        let self_time = dur.saturating_sub(child_time.get(&span.id).copied().unwrap_or(0));
        for (key, map) in [(&span.name, &mut by_name), (&span.cat, &mut by_cat)] {
            let agg = map.entry(key.clone()).or_default();
            agg.count += 1;
            agg.total += dur;
            agg.self_time += self_time;
        }
        if let Some(rank) = span.rank {
            *by_rank.entry(rank).or_insert(0) += dur;
        }
    }

    // --- Critical path: walk back from the latest completion. ---
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for span in spans.values() {
        if span.parent != 0 && spans.contains_key(&span.parent) {
            children.entry(span.parent).or_default().push(span.id);
        }
    }
    // `spans` was proven non-empty above; keep the typed error anyway so
    // the failure mode is a report, not a panic.
    let Some(last) = spans.values().max_by_key(|s| (s.end, s.id)) else {
        return Err(ObsError::Schema {
            detail: "trace contains no spans to profile".to_string(),
        });
    };
    let mut segments: Vec<Segment> = Vec::new();
    let mut cur = last.id;
    let mut cursor = last.end;
    // Each flow is followed at most once. Wall-clock traces can put a
    // flow's departure and arrival in the same microsecond with the origin
    // span equal to the receiver (a rank gathering from itself), so the
    // cursor alone does not guarantee progress.
    let mut followed: BTreeSet<u64> = BTreeSet::new();
    // Any pathological trace terminates via this cap, not a hang.
    let mut fuel = 2 * spans.len() + events.len() + 16;
    loop {
        fuel = fuel.saturating_sub(1);
        let span = &spans[&cur];
        let span_kind = if is_retryish(&span.name) {
            SegmentKind::Retry
        } else {
            SegmentKind::Compute
        };
        // What gated progress inside this span before `cursor`?
        // (a) the latest-ending child,
        let child = children
            .get(&cur)
            .into_iter()
            .flatten()
            .map(|id| &spans[id])
            .filter(|c| c.end <= cursor && c.end >= span.start && c.id != cur)
            .max_by_key(|c| (c.end, c.id));
        // (b) the latest causal arrival (flow t/f) into this span.
        let arrival = arrivals
            .get(&cur)
            .into_iter()
            .flatten()
            .filter(|&&(ts, flow, _)| {
                ts <= cursor
                    && ts >= span.start
                    && !followed.contains(&flow)
                    && flow_origin.contains_key(&flow)
            })
            .max_by_key(|&&(ts, flow, _)| (ts, flow))
            .copied();
        let arrival_t = arrival.map(|(ts, _, _)| ts);
        if fuel == 0 {
            // Close out with the remaining interval and stop.
            segments.push(Segment {
                name: span.name.clone(),
                cat: span.cat.clone(),
                span: cur,
                start: span.start,
                end: cursor,
                kind: span_kind,
            });
            break;
        }
        if let Some(c) = child.filter(|c| Some(c.end) >= arrival_t) {
            if cursor > c.end {
                segments.push(Segment {
                    name: span.name.clone(),
                    cat: span.cat.clone(),
                    span: cur,
                    start: c.end,
                    end: cursor,
                    kind: span_kind,
                });
            }
            cur = c.id;
            cursor = c.end;
        } else if let Some((ats, flow, attempts)) = arrival {
            followed.insert(flow);
            if cursor > ats {
                segments.push(Segment {
                    name: span.name.clone(),
                    cat: span.cat.clone(),
                    span: cur,
                    start: ats,
                    end: cursor,
                    kind: span_kind,
                });
            }
            let (origin, departed, flow_name, flow_cat) = flow_origin[&flow].clone();
            if ats > departed {
                // The in-flight window: transmission, backoff, recovery.
                let kind = if attempts > 1 || is_retryish(&flow_name) {
                    SegmentKind::Retry
                } else {
                    SegmentKind::Wait
                };
                segments.push(Segment {
                    name: flow_name,
                    cat: flow_cat,
                    span: 0,
                    start: departed,
                    end: ats,
                    kind,
                });
            }
            if origin == 0 || !spans.contains_key(&origin) || departed > cursor {
                break;
            }
            cur = origin;
            cursor = departed;
        } else {
            // Nothing inside gated it: the whole prefix is this span's own
            // work, and the chain continues at whatever on this lane
            // finished before it started.
            if cursor > span.start {
                segments.push(Segment {
                    name: span.name.clone(),
                    cat: span.cat.clone(),
                    span: cur,
                    start: span.start,
                    end: cursor,
                    kind: span_kind,
                });
            }
            let pred = spans
                .values()
                .filter(|p| p.tid == span.tid && p.end <= span.start && p.id != cur)
                .max_by_key(|p| (p.end, p.id));
            match pred {
                Some(p) => {
                    if span.start > p.end {
                        segments.push(Segment {
                            name: "gap".to_string(),
                            cat: "profile".to_string(),
                            span: 0,
                            start: p.end,
                            end: span.start,
                            kind: SegmentKind::Wait,
                        });
                    }
                    cur = p.id;
                    cursor = p.end;
                }
                None => {
                    // Nothing on this lane preceded it: ascend into the
                    // enclosing span, whose own work led up to this
                    // span's start (reaches all the way to run start).
                    let parent_id = span.parent;
                    let span_start = span.start;
                    match spans.get(&parent_id) {
                        Some(par) if par.start <= span_start => {
                            cur = parent_id;
                            cursor = span_start;
                        }
                        _ => break,
                    }
                }
            }
        }
    }
    segments.reverse();
    let mut attribution: BTreeMap<SegmentKind, u64> = BTreeMap::new();
    for seg in &segments {
        *attribution.entry(seg.kind).or_insert(0) += seg.dur();
    }

    Ok(ProfileReport {
        spans: spans.len() as u64,
        flows: flow_origin.len() as u64,
        run_wall: max_ts.saturating_sub(min_ts.min(max_ts)),
        by_name,
        by_cat,
        by_rank,
        critical_path: segments,
        attribution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsOptions, Recorder};
    use crate::sink::write_chrome_trace;

    /// A miniature causal run: a root with two sequential phases, the
    /// second receiving a message (with a retransmission) started in the
    /// first.
    fn sample_trace() -> String {
        let rec = Recorder::new(ObsOptions::logical());
        let flow;
        {
            let _root = rec.span("pipeline", "run");
            {
                let _a = rec.span_args("pipeline", "alignment", &[("rank", 0)]);
                flow = rec.flow_start("dist", "partition_result", &[("rank", 0)]);
            }
            {
                let _b = rec.span_args("dist", "gather", &[("rank", 0)]);
                rec.flow_step(flow, &[("attempt", 2)]);
                rec.flow_end(flow, &[("rank", 0), ("attempts", 2)]);
            }
        }
        write_chrome_trace(&rec.events())
    }

    #[test]
    fn profiles_a_causal_trace() {
        let report = profile_chrome_trace(&sample_trace()).expect("profiles");
        assert_eq!(report.spans, 3);
        assert_eq!(report.flows, 1);
        assert!(report.by_name.contains_key("run"));
        assert!(report.by_name.contains_key("alignment"));
        let run = report.by_name["run"];
        assert_eq!(run.count, 1);
        // Root total covers the phases; self excludes them.
        assert!(run.total > run.self_time);
        assert_eq!(report.by_rank.get(&0).copied().unwrap_or(0) > 0, true);
    }

    #[test]
    fn critical_path_is_bounded_by_run_wall_and_covers_the_longest_phase() {
        let report = profile_chrome_trace(&sample_trace()).expect("profiles");
        let total = report.critical_path_total();
        assert!(total > 0);
        assert!(total <= report.run_wall, "{total} > {}", report.run_wall);
        let longest_phase = report.by_name.values().map(|a| a.total).max().unwrap_or(0);
        assert!(
            total >= longest_phase,
            "critical path {total} < longest phase {longest_phase}"
        );
    }

    #[test]
    fn segments_are_chronological_disjoint_and_within_their_span() {
        let report = profile_chrome_trace(&sample_trace()).expect("profiles");
        let mut last_end = 0;
        for seg in &report.critical_path {
            assert!(seg.start <= seg.end);
            assert!(seg.start >= last_end, "segments overlap");
            last_end = seg.end;
        }
    }

    #[test]
    fn retransmitted_flow_time_counts_as_retry() {
        let report = profile_chrome_trace(&sample_trace()).expect("profiles");
        assert!(
            report.attributed(SegmentKind::Retry) > 0,
            "attempts=2 arrival should be attributed to retry"
        );
    }

    #[test]
    fn json_report_is_byte_stable_and_valid() {
        let trace = sample_trace();
        let a = profile_chrome_trace(&trace).expect("profiles").to_json();
        let b = profile_chrome_trace(&trace).expect("profiles").to_json();
        assert_eq!(a, b, "same trace, same bytes");
        assert!(a.contains("\"schema\": \"focus-profile-v1\""));
        schema::parse_json(&a).expect("report is valid JSON");
        let human = profile_chrome_trace(&trace)
            .expect("profiles")
            .human_table();
        assert!(human.contains("critical path"));
        assert!(human.contains("attribution"));
    }

    #[test]
    fn rejects_invalid_and_span_less_traces() {
        assert!(profile_chrome_trace("{}").is_err());
        assert!(profile_chrome_trace("{\"traceEvents\": []}").is_err());
        // Dangling flow ends are schema errors before profiling starts.
        let dangling = r#"{"traceEvents": [
{"ph": "B", "pid": 1, "tid": 1, "ts": 0, "id": 1, "cat": "c", "name": "x", "args": {}},
{"ph": "f", "pid": 1, "tid": 1, "ts": 1, "id": 9, "cat": "c", "name": "m", "args": {}},
{"ph": "E", "pid": 1, "tid": 1, "ts": 2, "id": 1, "cat": "c", "name": "x", "args": {}}
]}"#;
        assert!(profile_chrome_trace(dangling).is_err());
    }

    #[test]
    fn same_microsecond_self_flows_do_not_stall_the_walk() {
        // Wall-clock traces collapse a flow's departure and arrival into
        // one timestamp, with the origin span equal to the receiver (a
        // rank gathering from itself). The walk must still make progress
        // past such edges and reach the run start instead of exhausting
        // its fuel mid-trace.
        let trace = r#"{"traceEvents": [
{"ph": "B", "pid": 1, "tid": 1, "ts": 0, "id": 1, "cat": "p", "name": "prepare", "args": {}},
{"ph": "E", "pid": 1, "tid": 1, "ts": 80, "id": 1, "cat": "p", "name": "prepare", "args": {}},
{"ph": "B", "pid": 1, "tid": 1, "ts": 80, "id": 2, "cat": "p", "name": "assemble", "args": {}},
{"ph": "B", "pid": 1, "tid": 1, "ts": 82, "id": 3, "cat": "d", "name": "phase", "parent": 2, "args": {}},
{"ph": "s", "pid": 1, "tid": 1, "ts": 90, "id": 10, "cat": "d", "name": "gather", "parent": 3, "args": {}},
{"ph": "f", "pid": 1, "tid": 1, "ts": 90, "id": 10, "cat": "d", "name": "gather", "parent": 3, "args": {"attempts": 1}, "bp": "e"},
{"ph": "s", "pid": 1, "tid": 1, "ts": 90, "id": 11, "cat": "d", "name": "gather", "parent": 3, "args": {}},
{"ph": "f", "pid": 1, "tid": 1, "ts": 90, "id": 11, "cat": "d", "name": "gather", "parent": 3, "args": {"attempts": 1}, "bp": "e"},
{"ph": "E", "pid": 1, "tid": 1, "ts": 92, "id": 3, "cat": "d", "name": "phase", "args": {}},
{"ph": "E", "pid": 1, "tid": 1, "ts": 100, "id": 2, "cat": "p", "name": "assemble", "args": {}}
]}"#;
        let report = profile_chrome_trace(trace).expect("profiles");
        // The path must span the whole run: prepare (the longest phase,
        // 80) plus assemble, not just the tail behind the self-flows.
        assert_eq!(report.critical_path_total(), 100);
        assert!(report.critical_path_total() >= report.by_name["prepare"].total);
    }

    #[test]
    fn sequential_sibling_phases_chain_through_wait_gaps() {
        // Two top-level spans on one lane with a gap between them: the
        // path must walk back across the gap and cover both.
        let trace = r#"{"traceEvents": [
{"ph": "B", "pid": 1, "tid": 1, "ts": 0, "id": 1, "cat": "p", "name": "first", "args": {}},
{"ph": "E", "pid": 1, "tid": 1, "ts": 60, "id": 1, "cat": "p", "name": "first", "args": {}},
{"ph": "B", "pid": 1, "tid": 1, "ts": 70, "id": 2, "cat": "p", "name": "second", "args": {}},
{"ph": "E", "pid": 1, "tid": 1, "ts": 100, "id": 2, "cat": "p", "name": "second", "args": {}}
]}"#;
        let report = profile_chrome_trace(trace).expect("profiles");
        assert_eq!(report.run_wall, 100);
        assert_eq!(report.critical_path_total(), 100);
        assert_eq!(report.attributed(SegmentKind::Compute), 90);
        assert_eq!(report.attributed(SegmentKind::Wait), 10);
        // first(60) is the longest phase and the path covers it.
        assert!(report.critical_path_total() >= 60);
    }
}
