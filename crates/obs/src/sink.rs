//! Export sinks: JSON-lines events, Chrome `trace_event` JSON (Perfetto),
//! and the human-readable end-of-run report.
//!
//! Sinks render to `String`; callers decide where the bytes go (file,
//! stderr, test assertion). All serialisation is integer-only and iterates
//! ordered structures, so equal inputs render byte-identically.

use crate::event::{Event, EventKind};
use crate::json::{push_json_int_obj, push_json_key, push_json_str};
use crate::metrics::MetricsSnapshot;

/// Renders events as JSON lines: one compact object per line, in recording
/// order. Grep-able, stream-appendable, and what
/// `check_jsonl_events` validates.
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"ts\": ");
        out.push_str(&e.ts.to_string());
        out.push_str(", \"tid\": ");
        out.push_str(&e.tid.to_string());
        out.push_str(", ");
        push_json_key(&mut out, "ph");
        push_json_str(&mut out, e.kind.phase());
        out.push_str(", ");
        push_json_key(&mut out, "cat");
        push_json_str(&mut out, e.cat);
        out.push_str(", ");
        push_json_key(&mut out, "name");
        push_json_str(&mut out, e.name);
        out.push_str(", ");
        push_json_key(&mut out, "args");
        let args: Vec<(&str, i64)> = e.args.iter().map(|&(k, v)| (k, v)).collect();
        push_json_int_obj(&mut out, &args);
        out.push_str("}\n");
    }
    out
}

/// Renders events as a Chrome `trace_event` document: load the file in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing` to see spans per
/// thread lane, instant markers, and counter tracks.
pub fn write_chrome_trace(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"ph\": ");
        push_json_str(&mut out, e.kind.phase());
        out.push_str(", \"pid\": 1, \"tid\": ");
        out.push_str(&e.tid.to_string());
        out.push_str(", \"ts\": ");
        out.push_str(&e.ts.to_string());
        out.push_str(", ");
        push_json_key(&mut out, "cat");
        push_json_str(&mut out, e.cat);
        out.push_str(", ");
        push_json_key(&mut out, "name");
        push_json_str(&mut out, e.name);
        if e.kind == EventKind::Instant {
            // Instant events need a scope; "t" = thread-scoped.
            out.push_str(", \"s\": \"t\"");
        }
        out.push_str(", ");
        push_json_key(&mut out, "args");
        let args: Vec<(&str, i64)> = e.args.iter().map(|&(k, v)| (k, v)).collect();
        push_json_int_obj(&mut out, &args);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the metrics snapshot as an aligned, human-readable end-of-run
/// report, grouped by the dot-prefix of each metric name.
pub fn human_report(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("observability: no metrics recorded\n");
        return out;
    }
    let width = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(|k| k.len())
        .max()
        .unwrap_or(0);
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in &snapshot.counters {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in &snapshot.gauges {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (k, h) in &snapshot.histograms {
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "  {k:<width$}  n={} sum={} min={} mean={} max={}\n",
                h.count,
                h.sum,
                min,
                h.mean(),
                h.max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, DEFAULT_BOUNDS};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts: 0,
                tid: 1,
                cat: "pipeline",
                name: "alignment",
                kind: EventKind::Begin,
                args: vec![("pairs", 10)],
            },
            Event {
                ts: 1,
                tid: 1,
                cat: "partition",
                name: "edge_cut",
                kind: EventKind::Counter,
                args: vec![("value", 42)],
            },
            Event {
                ts: 2,
                tid: 1,
                cat: "dist",
                name: "crash",
                kind: EventKind::Instant,
                args: vec![],
            },
            Event {
                ts: 3,
                tid: 1,
                cat: "pipeline",
                name: "alignment",
                kind: EventKind::End,
                args: vec![],
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = write_jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines
            .iter()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[0].contains("\"ph\": \"B\""));
        assert!(lines[1].contains("\"value\": 42"));
    }

    #[test]
    fn chrome_trace_has_envelope_and_instant_scope() {
        let out = write_chrome_trace(&sample_events());
        assert!(out.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(out.trim_end().ends_with("]}"));
        assert!(out.contains("\"pid\": 1"));
        assert!(out.contains("\"s\": \"t\""));
    }

    #[test]
    fn empty_event_list_renders_valid_documents() {
        assert_eq!(write_jsonl(&[]), "");
        let trace = write_chrome_trace(&[]);
        assert!(trace.contains("\"traceEvents\": ["));
    }

    #[test]
    fn human_report_groups_sections() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("align.candidates", 100);
        s.gauges.insert("align.band", 32);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(8);
        h.observe(16);
        s.histograms.insert("align.overlap_len", h);
        let report = human_report(&s);
        assert!(report.contains("counters:"));
        assert!(report.contains("align.candidates"));
        assert!(report.contains("gauges:"));
        assert!(report.contains("histograms:"));
        assert!(report.contains("n=2 sum=24 min=8 mean=12 max=16"));
    }

    #[test]
    fn empty_snapshot_report_says_so() {
        let report = human_report(&MetricsSnapshot::default());
        assert!(report.contains("no metrics recorded"));
    }
}
