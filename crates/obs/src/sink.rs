//! Export sinks: JSON-lines events, Chrome `trace_event` JSON (Perfetto),
//! and the human-readable end-of-run report.
//!
//! Sinks render to `String`; callers decide where the bytes go (file,
//! stderr, test assertion). All serialisation is integer-only and iterates
//! ordered structures, so equal inputs render byte-identically.

use crate::event::{Event, EventKind};
use crate::json::{push_json_int_obj, push_json_key, push_json_str};
use crate::metrics::MetricsSnapshot;

/// Appends the causal-identity fields shared by both event sinks: the
/// span/flow `id` and the enclosing-span `parent` link, emitted only when
/// set so span-less events stay as compact as before.
fn push_causal_fields(out: &mut String, e: &Event) {
    if e.id != 0 {
        out.push_str("\"id\": ");
        out.push_str(&e.id.to_string());
        out.push_str(", ");
    }
    if e.parent != 0 {
        out.push_str("\"parent\": ");
        out.push_str(&e.parent.to_string());
        out.push_str(", ");
    }
}

/// Renders events as JSON lines: one compact object per line, in recording
/// order. Grep-able, stream-appendable, and what
/// `check_jsonl_events` validates.
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"ts\": ");
        out.push_str(&e.ts.to_string());
        out.push_str(", \"tid\": ");
        out.push_str(&e.tid.to_string());
        out.push_str(", ");
        push_json_key(&mut out, "ph");
        push_json_str(&mut out, e.kind.phase());
        out.push_str(", ");
        push_causal_fields(&mut out, e);
        push_json_key(&mut out, "cat");
        push_json_str(&mut out, e.cat);
        out.push_str(", ");
        push_json_key(&mut out, "name");
        push_json_str(&mut out, e.name);
        out.push_str(", ");
        push_json_key(&mut out, "args");
        let args: Vec<(&str, i64)> = e.args.iter().map(|&(k, v)| (k, v)).collect();
        push_json_int_obj(&mut out, &args);
        out.push_str("}\n");
    }
    out
}

/// Renders events as a Chrome `trace_event` document: load the file in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing` to see spans per
/// thread lane, instant markers, counter tracks, and causal arrows
/// between ranks (the `s`/`t`/`f` flow phases).
pub fn write_chrome_trace(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"ph\": ");
        push_json_str(&mut out, e.kind.phase());
        out.push_str(", \"pid\": 1, \"tid\": ");
        out.push_str(&e.tid.to_string());
        out.push_str(", \"ts\": ");
        out.push_str(&e.ts.to_string());
        out.push_str(", ");
        push_causal_fields(&mut out, e);
        push_json_key(&mut out, "cat");
        push_json_str(&mut out, e.cat);
        out.push_str(", ");
        push_json_key(&mut out, "name");
        push_json_str(&mut out, e.name);
        if e.kind == EventKind::Instant {
            // Instant events need a scope; "t" = thread-scoped.
            out.push_str(", \"s\": \"t\"");
        }
        if e.kind == EventKind::FlowEnd {
            // Bind the arrow head to the enclosing slice, not the next one.
            out.push_str(", \"bp\": \"e\"");
        }
        out.push_str(", ");
        push_json_key(&mut out, "args");
        let args: Vec<(&str, i64)> = e.args.iter().map(|&(k, v)| (k, v)).collect();
        push_json_int_obj(&mut out, &args);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the metrics snapshot as an aligned, human-readable end-of-run
/// report, grouped by the dot-prefix of each metric name.
pub fn human_report(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("observability: no metrics recorded\n");
        return out;
    }
    let width = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(|k| k.len())
        .max()
        .unwrap_or(0);
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in &snapshot.counters {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in &snapshot.gauges {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (k, h) in &snapshot.histograms {
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "  {k:<width$}  n={} sum={} min={} mean={} max={} p50={} p90={} p99={}\n",
                h.count,
                h.sum,
                min,
                h.mean(),
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, DEFAULT_BOUNDS};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts: 0,
                tid: 1,
                cat: "pipeline",
                name: "alignment",
                kind: EventKind::Begin,
                id: 1,
                parent: 0,
                args: vec![("pairs", 10)],
            },
            Event {
                ts: 1,
                tid: 1,
                cat: "partition",
                name: "edge_cut",
                kind: EventKind::Counter,
                id: 0,
                parent: 0,
                args: vec![("value", 42)],
            },
            Event {
                ts: 2,
                tid: 1,
                cat: "dist",
                name: "msg",
                kind: EventKind::FlowStart,
                id: 2,
                parent: 1,
                args: vec![],
            },
            Event {
                ts: 3,
                tid: 1,
                cat: "dist",
                name: "msg",
                kind: EventKind::FlowEnd,
                id: 2,
                parent: 1,
                args: vec![],
            },
            Event {
                ts: 4,
                tid: 1,
                cat: "dist",
                name: "crash",
                kind: EventKind::Instant,
                id: 0,
                parent: 1,
                args: vec![],
            },
            Event {
                ts: 5,
                tid: 1,
                cat: "pipeline",
                name: "alignment",
                kind: EventKind::End,
                id: 1,
                parent: 0,
                args: vec![],
            },
        ]
    }

    #[test]
    fn causal_fields_render_only_when_set() {
        let out = write_jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"id\": 1"));
        assert!(!lines[0].contains("\"parent\""));
        assert!(!lines[1].contains("\"id\""));
        assert!(lines[2].contains("\"ph\": \"s\""));
        assert!(lines[2].contains("\"id\": 2"));
        assert!(lines[2].contains("\"parent\": 1"));
        let trace = write_chrome_trace(&sample_events());
        assert!(trace.contains("\"ph\": \"f\""));
        assert!(trace.contains("\"bp\": \"e\""));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = write_jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines
            .iter()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines[0].contains("\"ph\": \"B\""));
        assert!(lines[1].contains("\"value\": 42"));
    }

    #[test]
    fn chrome_trace_has_envelope_and_instant_scope() {
        let out = write_chrome_trace(&sample_events());
        assert!(out.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(out.trim_end().ends_with("]}"));
        assert!(out.contains("\"pid\": 1"));
        assert!(out.contains("\"s\": \"t\""));
    }

    #[test]
    fn empty_event_list_renders_valid_documents() {
        assert_eq!(write_jsonl(&[]), "");
        let trace = write_chrome_trace(&[]);
        assert!(trace.contains("\"traceEvents\": ["));
    }

    #[test]
    fn human_report_groups_sections() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("align.candidates", 100);
        s.gauges.insert("align.band", 32);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(8);
        h.observe(16);
        s.histograms.insert("align.overlap_len", h);
        let report = human_report(&s);
        assert!(report.contains("counters:"));
        assert!(report.contains("align.candidates"));
        assert!(report.contains("gauges:"));
        assert!(report.contains("histograms:"));
        assert!(report.contains("n=2 sum=24 min=8 mean=12 max=16 p50=8 p90=16 p99=16"));
    }

    #[test]
    fn empty_snapshot_report_says_so() {
        let report = human_report(&MetricsSnapshot::default());
        assert!(report.contains("no metrics recorded"));
    }
}
