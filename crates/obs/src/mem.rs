//! Pure-std process-memory introspection: peak resident-set size.
//!
//! Linux keeps the high-water mark of a process's resident set in
//! `/proc/self/status` as `VmHWM` (kilobytes). Reading it costs one small
//! pseudo-file read — cheap enough to sample at every phase boundary —
//! and needs no dependency. On every other platform the sampler reports
//! `None` and the `mem.peak_rss_bytes` gauge is simply never set.

/// The process's peak resident-set size in bytes (`VmHWM`), or `None`
/// when the platform does not expose it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extracts `VmHWM: <n> kB` from a `/proc/<pid>/status` document.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb.saturating_mul(1024));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_vm_hwm_line() {
        let status = "Name:\tfocus\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads:\t4\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
    }

    #[test]
    fn missing_or_malformed_hwm_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tfocus\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnonsense kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_sampler_reports_a_positive_peak() {
        let bytes = peak_rss_bytes().expect("/proc/self/status has VmHWM");
        assert!(bytes > 0);
    }
}
