//! Pure-std validation of the sink outputs: a minimal recursive-descent
//! JSON parser plus checkers for the three formats the pipeline emits.
//! Used by `focus obs-check` (and CI) to validate `--trace`, `--events`
//! and `--metrics` files without pulling a JSON dependency into the
//! workspace.

use std::collections::BTreeMap;
use std::fmt;

/// Validation failure for an observability artefact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// The input is not well-formed JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// The JSON is well-formed but violates the expected schema.
    Schema {
        /// Which constraint failed.
        detail: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Parse { offset, expected } => {
                write!(f, "invalid JSON at byte {offset}: expected {expected}")
            }
            ObsError::Schema { detail } => write!(f, "schema violation: {detail}"),
        }
    }
}

impl std::error::Error for ObsError {}

fn schema_err(detail: impl Into<String>) -> ObsError {
    ObsError::Schema {
        detail: detail.into(),
    }
}

/// A parsed JSON value. Numbers are kept as `i64` — every format this
/// crate emits is integer-only by design.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the only number shape the sinks emit).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; `BTreeMap` so inspection order is stable.
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub(crate) fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, expected: &'static str) -> ObsError {
        ObsError::Parse {
            offset: self.pos,
            expected,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), ObsError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn eat_literal(&mut self, lit: &'static str) -> Result<(), ObsError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(lit))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ObsError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_int(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ObsError> {
        self.eat(b'{', "'{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ObsError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ObsError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            // Surrogate pairs never appear in our output;
                            // map unpaired surrogates to the replacement
                            // character rather than rejecting.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("an escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("valid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_int(&mut self) -> Result<Value, ObsError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("an integer (floats are not emitted)"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("an integer"))?;
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| self.err("an integer in i64 range"))
    }
}

/// Parses one JSON document; trailing whitespace allowed, trailing content
/// rejected.
pub fn parse_json(input: &str) -> Result<Value, ObsError> {
    let mut p = Parser::new(input);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(v)
}

const PHASES: [&str; 7] = ["B", "E", "i", "C", "s", "t", "f"];
/// The flow phases: `s` starts a causal arrow, `t` steps it, `f` ends it.
const FLOW_PHASES: [&str; 3] = ["s", "t", "f"];

fn check_event_object(obj: &BTreeMap<String, Value>, what: &str) -> Result<(), ObsError> {
    for key in ["ts", "tid", "ph", "cat", "name", "args"] {
        if !obj.contains_key(key) {
            return Err(schema_err(format!("{what}: missing key {key:?}")));
        }
    }
    let ph = obj
        .get("ph")
        .and_then(Value::as_str)
        .ok_or_else(|| schema_err(format!("{what}: \"ph\" must be a string")))?;
    if !PHASES.contains(&ph) {
        return Err(schema_err(format!("{what}: unknown phase {ph:?}")));
    }
    for key in ["ts", "tid"] {
        let v = obj
            .get(key)
            .and_then(Value::as_int)
            .ok_or_else(|| schema_err(format!("{what}: {key:?} must be an integer")))?;
        if v < 0 {
            return Err(schema_err(format!("{what}: {key:?} must be non-negative")));
        }
    }
    for key in ["cat", "name"] {
        if obj.get(key).and_then(Value::as_str).is_none() {
            return Err(schema_err(format!("{what}: {key:?} must be a string")));
        }
    }
    // The causal-identity fields are optional on spans but must be
    // well-typed whenever present.
    for key in ["id", "parent"] {
        if let Some(v) = obj.get(key) {
            match v.as_int() {
                Some(i) if i >= 0 => {}
                _ => {
                    return Err(schema_err(format!(
                        "{what}: {key:?} must be a non-negative integer"
                    )))
                }
            }
        }
    }
    if FLOW_PHASES.contains(&ph) {
        match obj.get("id").and_then(Value::as_int) {
            Some(id) if id >= 1 => {}
            _ => {
                return Err(schema_err(format!(
                    "{what}: flow event ({ph:?}) needs a positive \"id\""
                )))
            }
        }
    }
    let args = obj
        .get("args")
        .and_then(Value::as_object)
        .ok_or_else(|| schema_err(format!("{what}: \"args\" must be an object")))?;
    for (k, v) in args {
        if v.as_int().is_none() {
            return Err(schema_err(format!(
                "{what}: args[{k:?}] must be an integer"
            )));
        }
    }
    if ph == "C" && !args.contains_key("value") {
        return Err(schema_err(format!(
            "{what}: counter events need args[\"value\"]"
        )));
    }
    Ok(())
}

/// Causal-edge integrity over a sequence of event objects: every `t`
/// (step) and `f` (finish) flow event must reference the id of an `s`
/// (start) event emitted earlier in the stream — a dangling causal edge
/// means instrumentation claimed a dependency on work nobody recorded.
fn check_flow_references<'a>(
    events: impl Iterator<Item = (&'a BTreeMap<String, Value>, String)>,
) -> Result<(), ObsError> {
    let mut started: std::collections::BTreeSet<i64> = std::collections::BTreeSet::new();
    for (obj, what) in events {
        let ph = obj.get("ph").and_then(Value::as_str).unwrap_or("");
        if !FLOW_PHASES.contains(&ph) {
            continue;
        }
        let id = obj.get("id").and_then(Value::as_int).unwrap_or(0);
        match ph {
            "s" => {
                started.insert(id);
            }
            _ => {
                if !started.contains(&id) {
                    return Err(schema_err(format!(
                        "{what}: flow {ph:?} event references id {id} \
                         with no prior \"s\" event (dangling causal edge)"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Per-tid span-nesting check over a sequence of event objects: every `E`
/// must close an open `B`, and every lane must end with all spans closed.
fn check_span_balance<'a>(
    events: impl Iterator<Item = (&'a BTreeMap<String, Value>, String)>,
) -> Result<(), ObsError> {
    let mut open: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    for (obj, what) in events {
        let ph = obj.get("ph").and_then(Value::as_str).unwrap_or("");
        let tid = obj.get("tid").and_then(Value::as_int).unwrap_or(0);
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        match ph {
            "B" => open.entry(tid).or_default().push(name),
            "E" => {
                let stack = open.entry(tid).or_default();
                match stack.pop() {
                    None => {
                        return Err(schema_err(format!(
                            "{what}: end event {name:?} on tid {tid} with no open span"
                        )))
                    }
                    Some(top) if top != name => {
                        return Err(schema_err(format!(
                            "{what}: end event {name:?} on tid {tid} closes {top:?}"
                        )))
                    }
                    Some(_) => {}
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(schema_err(format!(
                "span {name:?} on tid {tid} never closed"
            )));
        }
    }
    Ok(())
}

/// Validates a JSON-lines event stream (the `--events` output): each
/// non-empty line is a well-formed event object, timestamps are
/// non-decreasing, and spans balance per thread lane.
pub fn check_jsonl_events(input: &str) -> Result<usize, ObsError> {
    let mut parsed = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let what = format!("line {}", lineno + 1);
        let value = parse_json(line)?;
        let obj = value
            .as_object()
            .ok_or_else(|| schema_err(format!("{what}: not an object")))?
            .clone();
        check_event_object(&obj, &what)?;
        parsed.push((obj, what));
    }
    let mut last_ts = -1i64;
    for (obj, what) in &parsed {
        let ts = obj.get("ts").and_then(Value::as_int).unwrap_or(0);
        if ts < last_ts {
            return Err(schema_err(format!("{what}: timestamp decreased")));
        }
        last_ts = ts;
    }
    check_span_balance(parsed.iter().map(|(o, w)| (o, w.clone())))?;
    check_flow_references(parsed.iter().map(|(o, w)| (o, w.clone())))?;
    Ok(parsed.len())
}

/// Validates a Chrome `trace_event` document (the `--trace` output):
/// envelope shape, per-event schema, and span balance per thread lane.
pub fn check_chrome_trace(input: &str) -> Result<usize, ObsError> {
    let value = parse_json(input)?;
    let root = value
        .as_object()
        .ok_or_else(|| schema_err("trace root must be an object"))?;
    let events = root
        .get("traceEvents")
        .ok_or_else(|| schema_err("missing \"traceEvents\""))?
        .as_array()
        .ok_or_else(|| schema_err("\"traceEvents\" must be an array"))?;
    let mut parsed = Vec::new();
    for (i, item) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        let obj = item
            .as_object()
            .ok_or_else(|| schema_err(format!("{what}: not an object")))?;
        check_event_object(obj, &what)?;
        if obj.get("pid").and_then(Value::as_int).is_none() {
            return Err(schema_err(format!("{what}: \"pid\" must be an integer")));
        }
        parsed.push((obj, what));
    }
    check_span_balance(parsed.iter().map(|&(o, ref w)| (o, w.clone())))?;
    check_flow_references(parsed.iter().map(|&(o, ref w)| (o, w.clone())))?;
    Ok(parsed.len())
}

/// Validates a metrics snapshot document (the `--metrics` output):
/// schema marker, integer counters/gauges, and internally consistent
/// histograms (counts length = bounds length + 1, bucket totals = count).
pub fn check_metrics_snapshot(input: &str) -> Result<(), ObsError> {
    let value = parse_json(input)?;
    let root = value
        .as_object()
        .ok_or_else(|| schema_err("metrics root must be an object"))?;
    match root.get("schema").and_then(Value::as_str) {
        Some("focus-metrics-v1") => {}
        other => {
            return Err(schema_err(format!(
                "expected schema \"focus-metrics-v1\", got {other:?}"
            )))
        }
    }
    for section in ["counters", "gauges", "histograms"] {
        if root.get(section).and_then(Value::as_object).is_none() {
            return Err(schema_err(format!("{section:?} must be an object")));
        }
    }
    let counters = root
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| schema_err("\"counters\" must be an object"))?;
    for (k, v) in counters {
        match v.as_int() {
            Some(i) if i >= 0 => {}
            _ => {
                return Err(schema_err(format!(
                    "counter {k:?} must be a non-negative integer"
                )))
            }
        }
    }
    let gauges = root
        .get("gauges")
        .and_then(Value::as_object)
        .ok_or_else(|| schema_err("\"gauges\" must be an object"))?;
    for (k, v) in gauges {
        if v.as_int().is_none() {
            return Err(schema_err(format!("gauge {k:?} must be an integer")));
        }
    }
    let histograms = root
        .get("histograms")
        .and_then(Value::as_object)
        .ok_or_else(|| schema_err("\"histograms\" must be an object"))?;
    for (k, v) in histograms {
        let h = v
            .as_object()
            .ok_or_else(|| schema_err(format!("histogram {k:?} must be an object")))?;
        let count = h
            .get("count")
            .and_then(Value::as_int)
            .ok_or_else(|| schema_err(format!("histogram {k:?}: missing \"count\"")))?;
        let bounds = h
            .get("bounds")
            .and_then(Value::as_array)
            .ok_or_else(|| schema_err(format!("histogram {k:?}: missing \"bounds\"")))?;
        let counts = h
            .get("counts")
            .and_then(Value::as_array)
            .ok_or_else(|| schema_err(format!("histogram {k:?}: missing \"counts\"")))?;
        if counts.len() != bounds.len() + 1 {
            return Err(schema_err(format!(
                "histogram {k:?}: counts length {} != bounds length {} + 1",
                counts.len(),
                bounds.len()
            )));
        }
        let mut prev = -1i64;
        for b in bounds {
            let b = b
                .as_int()
                .ok_or_else(|| schema_err(format!("histogram {k:?}: bounds must be integers")))?;
            if b <= prev {
                return Err(schema_err(format!(
                    "histogram {k:?}: bounds must be strictly ascending"
                )));
            }
            prev = b;
        }
        let mut total = 0i64;
        for c in counts {
            let c = c
                .as_int()
                .filter(|&c| c >= 0)
                .ok_or_else(|| schema_err(format!("histogram {k:?}: counts must be >= 0")))?;
            total = total.saturating_add(c);
        }
        if total != count {
            return Err(schema_err(format!(
                "histogram {k:?}: bucket counts sum to {total}, \"count\" says {count}"
            )));
        }
        for key in ["sum", "min", "max"] {
            if h.get(key).and_then(Value::as_int).is_none() {
                return Err(schema_err(format!(
                    "histogram {k:?}: {key:?} must be an integer"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsSnapshot, DEFAULT_BOUNDS};
    use crate::recorder::{ObsOptions, Recorder};
    use crate::sink::{write_chrome_trace, write_jsonl};

    fn recorded_events() -> Vec<crate::event::Event> {
        let rec = Recorder::new(ObsOptions::logical());
        {
            let _pipeline = rec.span("pipeline", "run");
            let _phase = rec.span_args("pipeline", "alignment", &[("pairs", 3)]);
            rec.instant("dist", "crash", &[("node", 2)]);
            rec.counter_sample("partition", "edge_cut", 17);
            let flow = rec.flow_start("dist", "msg", &[("rank", 1)]);
            rec.flow_step(flow, &[("attempt", 1)]);
            rec.flow_end(flow, &[]);
        }
        rec.events()
    }

    #[test]
    fn parser_round_trips_basic_values() {
        let v = parse_json("{\"a\": [1, -2, \"x\\n\"], \"b\": {\"c\": true}}")
            .expect("valid JSON parses");
        let obj = v.as_object().expect("object");
        assert_eq!(
            obj.get("a").and_then(Value::as_array).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("1.5").is_err(), "floats are rejected by design");
    }

    #[test]
    fn sink_outputs_validate() {
        let events = recorded_events();
        let n = check_jsonl_events(&write_jsonl(&events)).expect("valid JSONL");
        assert_eq!(n, events.len());
        let n = check_chrome_trace(&write_chrome_trace(&events)).expect("valid trace");
        assert_eq!(n, events.len());
    }

    #[test]
    fn snapshot_json_validates() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("align.candidates", 7);
        s.gauges.insert("align.band", -1);
        let mut h = Histogram::new(DEFAULT_BOUNDS);
        h.observe(12);
        s.histograms.insert("align.overlap_len", h);
        check_metrics_snapshot(&s.to_json()).expect("valid snapshot");
        check_metrics_snapshot(&MetricsSnapshot::default().to_json())
            .expect("empty snapshot is valid");
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let jsonl = "{\"ts\": 0, \"tid\": 1, \"ph\": \"B\", \"cat\": \"c\", \"name\": \"open\", \"args\": {}}\n";
        let err = check_jsonl_events(jsonl).expect_err("unclosed span rejected");
        assert!(matches!(err, ObsError::Schema { .. }));

        let jsonl = "{\"ts\": 0, \"tid\": 1, \"ph\": \"E\", \"cat\": \"c\", \"name\": \"x\", \"args\": {}}\n";
        assert!(check_jsonl_events(jsonl).is_err(), "stray end rejected");
    }

    #[test]
    fn mismatched_end_name_is_rejected() {
        let jsonl = concat!(
            "{\"ts\": 0, \"tid\": 1, \"ph\": \"B\", \"cat\": \"c\", \"name\": \"a\", \"args\": {}}\n",
            "{\"ts\": 1, \"tid\": 1, \"ph\": \"E\", \"cat\": \"c\", \"name\": \"b\", \"args\": {}}\n",
        );
        assert!(check_jsonl_events(jsonl).is_err());
    }

    #[test]
    fn decreasing_timestamps_are_rejected() {
        let jsonl = concat!(
            "{\"ts\": 5, \"tid\": 1, \"ph\": \"i\", \"cat\": \"c\", \"name\": \"a\", \"args\": {}}\n",
            "{\"ts\": 4, \"tid\": 1, \"ph\": \"i\", \"cat\": \"c\", \"name\": \"b\", \"args\": {}}\n",
        );
        assert!(check_jsonl_events(jsonl).is_err());
    }

    #[test]
    fn counter_event_without_value_is_rejected() {
        let jsonl = "{\"ts\": 0, \"tid\": 1, \"ph\": \"C\", \"cat\": \"c\", \"name\": \"x\", \"args\": {}}\n";
        assert!(check_jsonl_events(jsonl).is_err());
    }

    // Regression fixture: a trace whose `f` event references a flow id no
    // `s` event ever announced. Both checkers must reject it as a schema
    // error — a dangling causal edge would silently corrupt the profiler's
    // critical path.
    const DANGLING_FLOW_TRACE: &str = r#"{"displayTimeUnit": "ms", "traceEvents": [
{"ph": "B", "pid": 1, "tid": 1, "ts": 0, "id": 1, "cat": "dist", "name": "phase", "args": {}},
{"ph": "f", "pid": 1, "tid": 1, "ts": 1, "id": 99, "parent": 1, "bp": "e", "cat": "dist", "name": "msg", "args": {}},
{"ph": "E", "pid": 1, "tid": 1, "ts": 2, "id": 1, "cat": "dist", "name": "phase", "args": {}}
]}"#;

    #[test]
    fn dangling_flow_end_is_a_schema_error() {
        let err = check_chrome_trace(DANGLING_FLOW_TRACE).expect_err("dangling f rejected");
        assert!(err.to_string().contains("dangling causal edge"), "{err}");
    }

    #[test]
    fn dangling_flow_step_is_a_schema_error() {
        let jsonl = concat!(
            "{\"ts\": 0, \"tid\": 1, \"ph\": \"t\", \"id\": 7, \"cat\": \"dist\", \"name\": \"msg\", \"args\": {}}\n",
        );
        let err = check_jsonl_events(jsonl).expect_err("dangling t rejected");
        assert!(matches!(err, ObsError::Schema { .. }));
    }

    #[test]
    fn complete_flow_triples_validate() {
        let jsonl = concat!(
            "{\"ts\": 0, \"tid\": 1, \"ph\": \"s\", \"id\": 7, \"cat\": \"dist\", \"name\": \"msg\", \"args\": {}}\n",
            "{\"ts\": 1, \"tid\": 1, \"ph\": \"t\", \"id\": 7, \"cat\": \"dist\", \"name\": \"msg\", \"args\": {}}\n",
            "{\"ts\": 2, \"tid\": 1, \"ph\": \"f\", \"id\": 7, \"cat\": \"dist\", \"name\": \"msg\", \"args\": {}}\n",
        );
        assert_eq!(check_jsonl_events(jsonl).expect("valid flows"), 3);
    }

    #[test]
    fn flow_event_without_id_is_rejected() {
        let jsonl = "{\"ts\": 0, \"tid\": 1, \"ph\": \"s\", \"cat\": \"d\", \"name\": \"m\", \"args\": {}}\n";
        let err = check_jsonl_events(jsonl).expect_err("id-less flow rejected");
        assert!(err.to_string().contains("positive \"id\""), "{err}");
    }

    #[test]
    fn negative_id_or_parent_is_rejected() {
        let jsonl = "{\"ts\": 0, \"tid\": 1, \"ph\": \"i\", \"id\": -3, \"cat\": \"c\", \"name\": \"x\", \"args\": {}}\n";
        assert!(check_jsonl_events(jsonl).is_err());
        let jsonl = "{\"ts\": 0, \"tid\": 1, \"ph\": \"i\", \"parent\": -1, \"cat\": \"c\", \"name\": \"x\", \"args\": {}}\n";
        assert!(check_jsonl_events(jsonl).is_err());
    }

    #[test]
    fn histogram_consistency_is_enforced() {
        let bad = r#"{
  "schema": "focus-metrics-v1",
  "counters": {},
  "gauges": {},
  "histograms": {
    "h": {"count": 3, "sum": 1, "min": 1, "max": 1, "bounds": [1, 2], "counts": [1, 1, 0]}
  }
}"#;
        let err = check_metrics_snapshot(bad).expect_err("sum mismatch rejected");
        assert!(err.to_string().contains("bucket counts sum"));
    }

    #[test]
    fn wrong_schema_marker_is_rejected() {
        let bad = "{\"schema\": \"other\", \"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
        assert!(check_metrics_snapshot(bad).is_err());
    }
}
