//! Fixture-based integration tests: the whole analyzer — lexer, item
//! resolution, rules, lock-order audit, allowlist, rendering — run over
//! miniature workspaces with seeded violations under `tests/fixtures/`.

use std::path::PathBuf;
use xtask::analyze_workspace;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the analyzer over a fixture (no allowlist) and returns the
/// violations as `(code, line)` pairs in reported order.
fn run(name: &str) -> (xtask::Analysis, Vec<(String, usize)>) {
    let root = fixture(name);
    let analysis =
        analyze_workspace(&root, &root.join("xtask/allow.toml")).expect("fixture analyzes");
    let codes = analysis
        .violations
        .iter()
        .map(|d| (d.rule.code().to_string(), d.line))
        .collect();
    (analysis, codes)
}

#[test]
fn determinism_fixture_flags_exactly_the_seeded_sites() {
    let (analysis, codes) = run("determinism");
    assert_eq!(
        codes,
        vec![
            ("FC007".to_string(), 10), // for v in m.values()
            ("FC008".to_string(), 30), // SystemTime::now()
            ("FC010".to_string(), 35), // unsafe without SAFETY
        ],
        "{:#?}",
        analysis.violations
    );
    // The negative cases — adjacent sort, BTreeMap, documented unsafe —
    // must not appear at all (they would add lines 18, 25, and 41).
}

#[test]
fn unboundedread_fixture_flags_exactly_the_seeded_sites() {
    let (analysis, codes) = run("unboundedread");
    assert_eq!(
        codes,
        vec![
            ("FC011".to_string(), 9),  // fs::read(path)
            ("FC011".to_string(), 14), // std::fs::read_to_string(path)
            ("FC011".to_string(), 20), // r.read_to_end(&mut buf)
        ],
        "{:#?}",
        analysis.violations
    );
    // The negative cases — take()-capped read_to_end, BufReader line
    // streaming, fixed-chunk Read::read, slurps inside #[cfg(test)] —
    // must not appear (they would add lines 27, 33, 39, and 46).
}

/// Byte-stable rendering for the FC011 fixture, same contract as the
/// determinism golden file.
#[test]
fn unboundedread_report_matches_golden_file() {
    let (analysis, _) = run("unboundedread");
    let rendered: String = analysis
        .violations
        .iter()
        .map(|d| format!("{d}\n\n"))
        .collect();
    let golden_path = fixture("../golden/unboundedread.stderr");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        rendered, golden,
        "rendering drifted from tests/golden/unboundedread.stderr; \
         update the golden file if the change is intentional"
    );
}

#[test]
fn lockcycle_fixture_reports_the_two_lock_cycle() {
    let (analysis, codes) = run("lockcycle");
    assert_eq!(codes.len(), 1, "{:#?}", analysis.violations);
    assert_eq!(codes[0].0, "FC009");
    let d = &analysis.violations[0];
    assert!(
        d.message.contains("fc-lockcycle-fixture::a")
            && d.message.contains("fc-lockcycle-fixture::b"),
        "{}",
        d.message
    );
    assert!(d.help.contains("opposite order"), "{}", d.help);
}

/// Golden-file test for the rustc-style rendering: diagnostics are sorted
/// by (path, line, col, rule), so the rendered report is byte-stable.
#[test]
fn rendered_report_matches_golden_file() {
    let (analysis, _) = run("determinism");
    let rendered: String = analysis
        .violations
        .iter()
        .map(|d| format!("{d}\n\n"))
        .collect();
    let golden_path = fixture("../golden/determinism.stderr");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert_eq!(
        rendered, golden,
        "rendering drifted from tests/golden/determinism.stderr; \
         update the golden file if the change is intentional"
    );
}

/// The JSON report must agree with what the human-readable path would
/// exit with: findings present ⇒ `"clean": false`, and every violation's
/// rule code appears in the results array.
#[test]
fn json_report_is_consistent_with_violations() {
    let (analysis, codes) = run("determinism");
    let json = xtask::json::render(&analysis);
    assert!(json.contains("\"clean\": false"), "{json}");
    assert!(
        json.contains(&format!("\"violations\": {}", codes.len())),
        "{json}"
    );
    for (code, _) in &codes {
        assert!(json.contains(&format!("\"rule\": \"{code}\"")), "{json}");
    }

    let clean = xtask::Analysis {
        violations: vec![],
        suppressed: vec![],
        unused_allows: vec![],
        files: 1,
    };
    assert!(xtask::json::render(&clean).contains("\"clean\": true"));
}
