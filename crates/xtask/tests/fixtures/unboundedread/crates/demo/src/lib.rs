//! FC011 fixture: seeded unbounded whole-input reads next to their
//! bounded, stream-shaped counterparts.

use std::fs;
use std::io::{BufRead, BufReader, Read};

/// Positive: allocates a buffer sized by whatever is on disk.
pub fn slurp_bytes(path: &str) -> Vec<u8> {
    fs::read(path).unwrap_or_default()
}

/// Positive: same slurp through the fully qualified path.
pub fn slurp_text(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}

/// Positive: unbounded stream slurp via the `Read` trait.
pub fn slurp_stream(mut r: impl Read) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = r.read_to_end(&mut buf);
    buf
}

/// Negative: the `take` cap bounds the read explicitly.
pub fn bounded_stream(r: impl Read, cap: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = r.take(cap).read_to_end(&mut buf);
    buf
}

/// Negative: incremental streaming never holds the whole input.
pub fn count_lines(r: impl Read) -> usize {
    BufReader::new(r).lines().count()
}

/// Negative: `Read::read` fills a fixed-size chunk, not the whole input.
pub fn first_chunk(mut r: impl Read) -> usize {
    let mut chunk = [0u8; 4096];
    r.read(&mut chunk).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_may_slurp() {
        let _ = std::fs::read("fixture");
    }
}
