//! Seeded determinism violations for the analyzer's integration tests.
//! Each `FC00x:` marker below must be flagged; each `NOT flagged` case
//! must stay clean, or the integration test fails.

use std::collections::{BTreeMap, HashMap};

/// FC007: hash-order iteration on a data path.
pub fn hash_iteration(counts: &HashMap<String, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for v in counts.values() {
        out.push(*v);
    }
    out
}

/// Canonicalized by an adjacent sort: NOT flagged.
pub fn sorted_iteration(weights: &HashMap<String, u32>) -> Vec<(String, u32)> {
    let mut pairs: Vec<(String, u32)> = weights.iter().map(|(k, v)| (k.clone(), *v)).collect();
    pairs.sort_unstable();
    pairs
}

/// Ordered container: NOT flagged.
pub fn btree_iteration(depths: &BTreeMap<String, u32>) -> u32 {
    depths.values().sum()
}

/// FC008: wall clock on a data path.
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

/// FC010: unsafe without a SAFETY comment.
pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Documented unsafe: NOT flagged.
pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture only; the caller passes a valid, aligned pointer.
    unsafe { *p }
}
