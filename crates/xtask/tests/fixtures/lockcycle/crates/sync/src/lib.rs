//! Seeded two-lock ordering cycle: `ab` takes `a` then `b`, `ba` takes
//! `b` then `a`. FC009 must report exactly one cycle naming both locks.

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }
}
