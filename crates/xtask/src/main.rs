//! `cargo xtask` — workspace automation. See the library docs for the rule
//! set; this binary is argument parsing and exit codes only.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::diag::Rule;

const USAGE: &str = "\
Usage: cargo xtask <command> [options]

Commands:
  analyze     run the Focus-specific static-analysis rules over the workspace

Options (analyze):
  --root <dir>    workspace root (default: discovered from the current dir)
  --allow <file>  allowlist path (default: <root>/xtask/allow.toml)
  --json <file>   also write the findings as a machine-readable JSON report
  --list-rules    print the rule set and exit
  --verbose       also print suppressed findings with their reasons

Exit status: 0 when clean, 1 on violations or stale allow.toml entries,
2 on usage or I/O errors. A stale suppression is a failure, not a warning:
an allowlist that no longer matches anything is hiding either dead policy
or a finding that moved out from under it.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn analyze(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in Rule::all() {
                    println!("{} {:<20} {}", rule.code(), rule.name(), rule.rationale());
                }
                return ExitCode::SUCCESS;
            }
            "--verbose" => verbose = true,
            "--root" => root = it.next().map(PathBuf::from),
            "--allow" => allow = it.next().map(PathBuf::from),
            "--json" => json_out = it.next().map(PathBuf::from),
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match xtask::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let allow = allow.unwrap_or_else(|| root.join("xtask/allow.toml"));

    let analysis = match xtask::analyze_workspace(&root, &allow) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, xtask::json::render(&analysis)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if verbose {
        for (d, reason) in &analysis.suppressed {
            println!(
                "allowed[{}]: {} ({})\n  --> {}:{}",
                d.rule.code(),
                d.message,
                reason,
                d.path,
                d.line
            );
        }
    }
    for entry in &analysis.unused_allows {
        eprintln!(
            "error: stale allow.toml entry (rule `{}`, path `{}`) matched nothing; \
             delete it or fix its path/pattern",
            entry.rule.name(),
            entry.path
        );
    }
    for d in &analysis.violations {
        eprintln!("{d}\n");
    }
    if analysis.violations.is_empty() && analysis.unused_allows.is_empty() {
        println!(
            "xtask analyze: {} files clean ({} finding(s) allowlisted)",
            analysis.files,
            analysis.suppressed.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "xtask analyze: {} violation(s), {} stale allow entrie(s) across {} files",
        analysis.violations.len(),
        analysis.unused_allows.len(),
        analysis.files
    );
    ExitCode::FAILURE
}
