//! Workspace discovery: which crates and files the analyzer covers.

use std::fs;
use std::path::{Path, PathBuf};

/// A crate whose library sources the analyzer lints.
#[derive(Debug, Clone)]
pub struct LintCrate {
    /// Package name from `Cargo.toml` (`fc-seq`, `focus-core`, ...).
    pub name: String,
    /// Crate directory relative to the workspace root (`crates/seq`).
    pub rel_dir: String,
    /// All `.rs` files under `src/`, workspace-relative, sorted.
    pub sources: Vec<String>,
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects the lintable crates: every `crates/*` member whose package name
/// is `fc-*` or `focus-core`, except the experiment harness (`fc-bench`,
/// whose benches intentionally assert) and this tool itself.
pub fn lint_crates(root: &Path) -> std::io::Result<Vec<LintCrate>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        let Some(name) = package_name(&text) else {
            continue;
        };
        let lintable = (name.starts_with("fc-") || name == "focus-core") && name != "fc-bench";
        if !lintable {
            continue;
        }
        let src = dir.join("src");
        let mut sources = Vec::new();
        collect_rs(&src, &mut sources)?;
        sources.sort();
        let rel = |p: &Path| {
            p.strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/")
        };
        out.push(LintCrate {
            name,
            rel_dir: rel(&dir),
            sources: sources.iter().map(|p| rel(p)).collect(),
        });
    }
    Ok(out)
}

/// First `name = "..."` in the `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Module stems for the collision rule: file stems under `src/`, minus the
/// crate-root files that never act as module names.
pub fn module_stems(c: &LintCrate) -> Vec<(String, String)> {
    c.sources
        .iter()
        .filter_map(|p| {
            let stem = Path::new(p).file_stem()?.to_string_lossy().into_owned();
            if matches!(stem.as_str(), "lib" | "main" | "mod") {
                return None;
            }
            Some((stem, p.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_workspace_style_manifests() {
        let manifest = "[package]\nname = \"fc-seq\"\nversion.workspace = true\n";
        assert_eq!(package_name(manifest), Some("fc-seq".to_string()));
    }

    #[test]
    fn package_name_ignores_dependency_tables() {
        let manifest = "[dependencies]\nname = \"wrong\"\n[package]\nname = \"right\"\n";
        assert_eq!(package_name(manifest), Some("right".to_string()));
    }

    #[test]
    fn finds_this_workspace_and_its_crates() {
        let here = std::env::current_dir().unwrap();
        let root = find_root(&here).expect("xtask runs from inside the workspace");
        let crates = lint_crates(&root).unwrap();
        let names: Vec<&str> = crates.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"fc-seq"), "{names:?}");
        assert!(names.contains(&"focus-core"), "{names:?}");
        assert!(
            !names.contains(&"fc-bench"),
            "bench harness is exempt: {names:?}"
        );
        assert!(!names.contains(&"xtask"), "{names:?}");
        let seq = crates.iter().find(|c| c.name == "fc-seq").unwrap();
        assert!(
            seq.sources.iter().any(|s| s.ends_with("src/fastq.rs")),
            "{:?}",
            seq.sources
        );
    }
}
