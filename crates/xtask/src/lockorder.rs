//! FC009 — the workspace lock-order audit.
//!
//! Two threads that acquire the same pair of locks in opposite orders can
//! deadlock; TSan and the chaos tests only catch the schedules they happen
//! to run. This module proves the absence of that class statically, for the
//! idioms this workspace actually uses (fc-serve's `Core` mutex behind the
//! `lock_core` helper, fc-obs's generic `lock(&self.counters)` helper):
//!
//! 1. **Per-function acquisition scan.** Every `x.lock()` / `.read()` /
//!    `.write()` whose receiver resolves (through the [`crate::items`]
//!    tables) to `std::sync::Mutex`/`RwLock` is an acquisition. A lock is
//!    identified crate-wide by `crate-name::binding-or-field-name` —
//!    field names are how this workspace names its locks, so `self.core`
//!    and `shared.core` are the same lock.
//! 2. **Guard liveness.** A `let`-bound guard lives to the end of its
//!    enclosing block; a temporary guard lives to the end of its statement;
//!    `drop(g)` ends a guard early. While any guard is live, each further
//!    acquisition adds a `held → acquired` edge.
//! 3. **Helper propagation (one level).** A fn returning a
//!    `MutexGuard`/`RwLock*Guard` is a *guard helper*: calling it acquires
//!    the lock it locks, with normal liveness at the call site. A lock
//!    parameter (`fn lock<T>(m: &Mutex<T>)`) is resolved from the argument
//!    at each call site. Non-guard-returning callees that lock internally
//!    contribute transient edges (held only while the call runs).
//! 4. **Cycle detection.** The union of all edges is one workspace digraph;
//!    any cycle (including a self-edge — relocking a held `std::sync`
//!    mutex deadlocks immediately) is reported with both acquisition sites.
//!
//! Unresolvable receivers and arguments fail open, like the other
//! path-aware rules: FC009 proves what it can see, and what it can see is
//! every lock this workspace has.

use crate::diag::{Diagnostic, Rule};
use crate::items::{paths, CrateItems, FileItems};
use crate::lexer::{Token, TokenKind};
use crate::rules::test_spans;
use std::collections::{BTreeMap, BTreeSet};

/// Where an acquisition happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub func: String,
}

/// A lock as seen from inside one function.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LockRef {
    /// A concrete lock: `crate-name::name`.
    Fixed(String),
    /// The lock behind (non-self) parameter `i`, resolved at call sites.
    Param(usize),
}

/// One acquisition inside a fn body, in source order. Only the lock
/// identity matters for splicing: when a helper's acquisitions replay at a
/// call site, the edges are anchored at the call, not inside the helper.
#[derive(Debug, Clone)]
struct Acq {
    lock: LockRef,
}

/// What one function does with locks (pass 1 result).
#[derive(Debug, Clone, Default)]
struct FnSummary {
    acquires: Vec<Acq>,
    /// Returns the guard of its *last* acquisition to the caller.
    returns_guard: bool,
}

/// A `held → acquired` edge with both sites.
#[derive(Debug, Clone)]
struct Edge {
    hold_site: Site,
    acq_site: Site,
}

struct StoredFile {
    crate_name: String,
    rel_path: String,
    tokens: Vec<Token>,
    items: FileItems,
}

/// Accumulates files, then resolves the workspace lock-order graph.
#[derive(Default)]
pub struct Collector {
    files: Vec<StoredFile>,
    crates: BTreeMap<String, CrateItems>,
}

impl Collector {
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Registers a crate's merged item table (fields resolve crate-wide).
    pub fn add_crate(&mut self, crate_name: &str, krate: &CrateItems) {
        self.crates.insert(crate_name.to_string(), krate.clone());
    }

    /// Registers one lexed file for the audit.
    pub fn add_file(
        &mut self,
        crate_name: &str,
        rel_path: &str,
        tokens: &[Token],
        items: &FileItems,
    ) {
        self.files.push(StoredFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            tokens: tokens.to_vec(),
            items: items.clone(),
        });
    }

    /// Builds the workspace lock-order graph and reports every cycle.
    pub fn finish(&self) -> Vec<Diagnostic> {
        let empty = CrateItems::default();
        // Pass 1: per-fn summaries (direct acquisitions only). Only fns
        // that touch locks enter the table, so name collisions stay rare;
        // the first definition wins deterministically (files arrive in
        // sorted order from the workspace walk).
        let mut table: BTreeMap<String, FnSummary> = BTreeMap::new();
        for file in &self.files {
            let krate = self.crates.get(&file.crate_name).unwrap_or(&empty);
            for f in functions(&file.tokens) {
                let summary = scan_body(file, krate, &f, None, &mut BTreeMap::new());
                if !summary.acquires.is_empty() {
                    table.entry(f.name.clone()).or_insert(summary);
                }
            }
        }
        // Pass 2: rescan with the helper table, building edges.
        let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
        for file in &self.files {
            let krate = self.crates.get(&file.crate_name).unwrap_or(&empty);
            for f in functions(&file.tokens) {
                scan_body(file, krate, &f, Some(&table), &mut edges);
            }
        }
        cycles_to_diagnostics(&edges)
    }
}

/// One function's name, parameter names, and body token range.
struct FnSpan {
    name: String,
    /// Non-`self` parameter names in order (for Param resolution).
    params: Vec<String>,
    returns_guard: bool,
    /// Token range of the body, *inside* the braces.
    body: std::ops::Range<usize>,
}

/// Extracts every non-test fn with a body from a token stream.
fn functions(tokens: &[Token]) -> Vec<FnSpan> {
    let excluded = test_spans(tokens);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if excluded[i] || !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        // Find the parameter list, skipping generics on the name.
        let mut j = i + 2;
        let mut angle = 0isize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(j > 0 && tokens[j - 1].is_punct('-')) {
                angle -= 1;
            } else if angle == 0 && (t.is_punct('(') || t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        if !tokens.get(j).map(|t| t.is_punct('(')).unwrap_or(false) {
            i += 2;
            continue;
        }
        let params_open = j;
        let mut depth = 0usize;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let params_close = j;
        // Return type up to the body `{` (or `;` for bodyless decls).
        let mut returns_guard = false;
        let mut k = params_close + 1;
        let mut body_open = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') {
                body_open = Some(k);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            if t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"
                )
            {
                returns_guard = true;
            }
            k += 1;
        }
        let Some(open) = body_open else {
            i = params_close + 1;
            continue;
        };
        // Body range: inside the matching braces.
        let mut brace = 0usize;
        let mut m = open;
        let mut close = tokens.len();
        while m < tokens.len() {
            if tokens[m].is_punct('{') {
                brace += 1;
            } else if tokens[m].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    close = m;
                    break;
                }
            }
            m += 1;
        }
        out.push(FnSpan {
            name: name_tok.text.clone(),
            params: param_names(&tokens[params_open + 1..params_close]),
            returns_guard,
            body: open + 1..close,
        });
        i = close + 1;
    }
    out
}

/// Non-`self` parameter names at top-level commas of a param list.
fn param_names(params: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = 0usize;
    let mut spans = Vec::new();
    for (i, t) in params.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('>') && !(i > 0 && params[i - 1].is_punct('-')) {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            spans.push(&params[start..i]);
            start = i + 1;
        }
    }
    if start < params.len() {
        spans.push(&params[start..]);
    }
    for span in spans {
        let Some(name) = span
            .iter()
            .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut"))
        else {
            continue;
        };
        if name.is_ident("self") {
            continue;
        }
        out.push(name.text.clone());
    }
    out
}

/// Is this canonical type head a lock?
fn is_lock_type(canonical: &str) -> bool {
    canonical == paths::MUTEX || canonical == paths::RWLOCK
}

/// A live guard during the body scan.
struct LiveGuard {
    lock: LockRef,
    site: Site,
    /// Brace depth (relative to body start) the guard was bound at;
    /// let-bound guards die when their block closes.
    depth: usize,
    /// Temporaries die at the next `;`.
    temp: bool,
    /// Binding name, for `drop(g)`.
    name: Option<String>,
}

/// Scans one fn body. In pass 1 (`table == None`) it records the fn's own
/// acquisitions; in pass 2 it also splices helper calls and emits edges.
fn scan_body(
    file: &StoredFile,
    krate: &CrateItems,
    f: &FnSpan,
    table: Option<&BTreeMap<String, FnSummary>>,
    edges: &mut BTreeMap<(String, String), Edge>,
) -> FnSummary {
    let tokens = &file.tokens;
    let param_index: BTreeMap<&str, usize> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let is_lock_param = |name: &str| -> Option<usize> {
        let idx = *param_index.get(name)?;
        let ty = file.items.bindings.get(name)?;
        is_lock_type(ty).then_some(idx)
    };
    let site = |t: &Token| Site {
        path: file.rel_path.clone(),
        line: t.line,
        col: t.col,
        func: f.name.clone(),
    };
    // The type of a lock-naming identifier: fields for qualified receivers
    // (`x.name.`), bindings first otherwise.
    let name_type = |name: &str, qualified: bool| -> Option<&String> {
        if qualified {
            file.items
                .fields
                .get(name)
                .or_else(|| krate.fields.get(name))
        } else {
            file.items
                .bindings
                .get(name)
                .or_else(|| file.items.fields.get(name))
                .or_else(|| krate.fields.get(name))
        }
    };
    let fixed_id = |name: &str, qualified: bool| -> Option<String> {
        let ty = name_type(name, qualified)?;
        is_lock_type(ty).then(|| format!("{}::{}", file.crate_name, name))
    };

    let mut summary = FnSummary {
        returns_guard: f.returns_guard,
        ..FnSummary::default()
    };
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut current_let: Option<String> = None;
    let emit_edges = table.is_some();

    // Records one resolved acquisition: edges from everything live, then
    // (unless transient) the new guard goes live itself. `binding` is the
    // let-binding that holds the guard, or None for a statement temporary.
    let acquire = |lock: LockRef,
                   at: Site,
                   transient: bool,
                   live: &mut Vec<LiveGuard>,
                   binding: Option<String>,
                   depth: usize,
                   summary: &mut FnSummary,
                   edges: &mut BTreeMap<(String, String), Edge>| {
        if emit_edges {
            if let LockRef::Fixed(to) = &lock {
                for held in live.iter() {
                    if let LockRef::Fixed(from) = &held.lock {
                        edges
                            .entry((from.clone(), to.clone()))
                            .or_insert_with(|| Edge {
                                hold_site: held.site.clone(),
                                acq_site: at.clone(),
                            });
                    }
                }
            }
        }
        summary.acquires.push(Acq { lock: lock.clone() });
        if !transient {
            live.push(LiveGuard {
                lock,
                site: at,
                depth,
                temp: binding.is_none(),
                name: binding,
            });
        }
    };

    let mut i = f.body.start;
    while i < f.body.end {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
            current_let = None;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            live.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            current_let = None;
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            live.retain(|g| !g.temp);
            current_let = None;
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // `let [mut] name` opens a binding statement.
        if t.is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).map(|n| n.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            if let Some(name) = tokens.get(j).filter(|n| n.kind == TokenKind::Ident) {
                current_let = Some(name.text.clone());
            }
            i += 1;
            continue;
        }
        // `drop(g)` releases a named guard early.
        if t.is_ident("drop")
            && tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && tokens.get(i + 3).map(|n| n.is_punct(')')).unwrap_or(false)
        {
            if let Some(g) = tokens.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                live.retain(|lg| lg.name.as_deref() != Some(g.text.as_str()));
            }
            i += 4;
            continue;
        }
        // Direct acquisition: `recv.lock()` / `.read()` / `.write()`.
        if matches!(t.text.as_str(), "lock" | "read" | "write")
            && i > f.body.start
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            if let Some((name, qualified)) = receiver_name(tokens, i - 1) {
                let wants = if t.text == "lock" {
                    paths::MUTEX
                } else {
                    paths::RWLOCK
                };
                if name_type(&name, qualified)
                    .map(|ty| ty == wants)
                    .unwrap_or(false)
                {
                    let lock = match (qualified, is_lock_param(&name)) {
                        (false, Some(idx)) => LockRef::Param(idx),
                        _ => LockRef::Fixed(format!("{}::{}", file.crate_name, name)),
                    };
                    let binding = if binds_result(tokens, i + 1, f.body.end) {
                        current_let.clone()
                    } else {
                        None
                    };
                    acquire(
                        lock,
                        site(t),
                        false,
                        &mut live,
                        binding,
                        depth,
                        &mut summary,
                        edges,
                    );
                    i += 2;
                    continue;
                }
            }
        }
        // Helper call (pass 2 only): `helper(args)` or `self.helper(args)`.
        if let Some(table) = table {
            let free_call = i == f.body.start || !tokens[i - 1].is_punct('.');
            let self_method = i >= f.body.start + 2
                && tokens[i - 1].is_punct('.')
                && tokens[i - 2].is_ident("self");
            if (free_call || self_method)
                && tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                && t.text != f.name
            {
                if let Some(callee) = table.get(&t.text) {
                    let args = call_args(tokens, i + 1, f.body.end);
                    let resolve = |lock: &LockRef| -> Option<String> {
                        match lock {
                            LockRef::Fixed(id) => Some(id.clone()),
                            LockRef::Param(idx) => {
                                let arg = args.get(*idx)?;
                                let (name, qualified) = arg_lock_name(tokens, arg.clone())?;
                                fixed_id(&name, qualified)
                            }
                        }
                    };
                    let last = callee.acquires.len().saturating_sub(1);
                    let binding = if binds_result(tokens, i + 1, f.body.end) {
                        current_let.clone()
                    } else {
                        None
                    };
                    for (k, acq) in callee.acquires.iter().enumerate() {
                        let Some(id) = resolve(&acq.lock) else {
                            continue;
                        };
                        // Only the returned guard outlives the call.
                        let transient = !(callee.returns_guard && k == last);
                        acquire(
                            LockRef::Fixed(id),
                            site(t),
                            transient,
                            &mut live,
                            binding.clone(),
                            depth,
                            &mut summary,
                            edges,
                        );
                    }
                }
            }
        }
        i += 1;
    }
    summary
}

/// The identifier receiving a `.method()` call ending at the `.` at `dot`,
/// plus whether it was field-qualified (`x.name.` / `self.name.`).
fn receiver_name(tokens: &[Token], dot: usize) -> Option<(String, bool)> {
    if dot == 0 {
        return None;
    }
    let r = &tokens[dot - 1];
    if r.kind != TokenKind::Ident || r.is_ident("self") {
        return None;
    }
    let qualified =
        dot >= 3 && tokens[dot - 2].is_punct('.') && tokens[dot - 3].kind == TokenKind::Ident;
    Some((r.text.clone(), qualified))
}

/// The index of the `)` matching the `(` at `open`, if inside `limit`.
fn matching_paren(tokens: &[Token], open: usize, limit: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().take(limit).skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Whether the value of the call whose `(` sits at `open` survives into the
/// enclosing `let` binding. Only unwrap-style adapters keep the guard
/// (`let g = m.lock().unwrap();`); any further projection means the guard
/// is a statement temporary (`let r = lock_core(s).sched.would_reject(…);`
/// binds the *result*, and the guard dies at the semicolon).
fn binds_result(tokens: &[Token], open: usize, limit: usize) -> bool {
    let Some(close) = matching_paren(tokens, open, limit) else {
        return false;
    };
    let mut k = close + 1;
    while k < limit {
        if !tokens[k].is_punct('.') {
            // Only a chain running straight to the statement end keeps the
            // guard; a comparison, deref, or `{` consumes it as a temporary
            // (`let over = *lock_a(s) > 0;`).
            return tokens[k].is_punct(';');
        }
        let adapter = tokens.get(k + 1).map_or(false, |n| {
            matches!(
                n.text.as_str(),
                "unwrap" | "expect" | "unwrap_or_else" | "into_inner"
            )
        });
        if !adapter {
            return false;
        }
        match tokens.get(k + 2) {
            Some(p) if p.is_punct('(') => match matching_paren(tokens, k + 2, limit) {
                Some(end) => k = end + 1,
                None => return true,
            },
            _ => return false,
        }
    }
    true
}

/// Splits the call arguments starting at the `(` at `open` into top-level
/// token ranges.
fn call_args(tokens: &[Token], open: usize, limit: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    let mut i = open;
    while i < limit {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if i > start {
                    out.push(start..i);
                }
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            out.push(start..i);
            start = i + 1;
        }
        i += 1;
    }
    out
}

/// The lock-naming identifier of a call argument: `&self.counters` →
/// (`counters`, qualified), `&m` → (`m`, unqualified).
fn arg_lock_name(tokens: &[Token], range: std::ops::Range<usize>) -> Option<(String, bool)> {
    let mut i = range.start;
    while i < range.end && (tokens[i].is_punct('&') || tokens[i].is_ident("mut")) {
        i += 1;
    }
    let first = tokens.get(i).filter(|t| t.kind == TokenKind::Ident)?;
    if first.is_ident("self") && tokens.get(i + 1).map(|t| t.is_punct('.')).unwrap_or(false) {
        let field = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Ident)?;
        return Some((field.text.clone(), true));
    }
    // A plain name; a trailing `.field` path takes the last field.
    let mut name = first.text.clone();
    let mut qualified = false;
    let mut j = i + 1;
    while tokens.get(j).map(|t| t.is_punct('.')).unwrap_or(false) {
        let Some(field) = tokens.get(j + 1).filter(|t| t.kind == TokenKind::Ident) else {
            break;
        };
        name = field.text.clone();
        qualified = true;
        j += 2;
    }
    Some((name, qualified))
}

/// Finds every elementary cycle reachable via DFS back edges and renders
/// one diagnostic per distinct cycle, deterministically ordered.
fn cycles_to_diagnostics(edges: &BTreeMap<(String, String), Edge>) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let starts: Vec<&str> = adj.keys().copied().collect();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();

    // Iterative DFS with an explicit stack, collecting back-edge cycles.
    for start in starts {
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        visited.insert(start);
        while let Some(&(node, child)) = stack.last() {
            let next = adj.get(node).and_then(|ns| ns.get(child)).copied();
            match next {
                Some(n) => {
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    if on_path.contains(n) {
                        // Back edge: the cycle is path[pos..], closing on n.
                        let pos = path.iter().position(|&p| p == n).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[pos..].iter().map(|s| s.to_string()).collect();
                        // Canonical rotation: smallest lock id first.
                        let min = cycle
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.cmp(b.1))
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        cycle.rotate_left(min);
                        if seen_cycles.insert(cycle.clone()) {
                            out.push(render_cycle(&cycle, edges));
                        }
                    } else if !visited.contains(n) {
                        visited.insert(n);
                        stack.push((n, 0));
                        path.push(n);
                        on_path.insert(n);
                    }
                }
                None => {
                    stack.pop();
                    if let Some(done) = path.pop() {
                        on_path.remove(done);
                    }
                }
            }
        }
    }
    out
}

/// One diagnostic for a cycle `[a, b, ..]` (meaning a→b→..→a).
fn render_cycle(cycle: &[String], edges: &BTreeMap<(String, String), Edge>) -> Diagnostic {
    let n = cycle.len();
    let chain: Vec<String> = cycle
        .iter()
        .chain(cycle.first())
        .map(|s| format!("`{s}`"))
        .collect();
    let lookup = |k: usize| {
        edges
            .get(&(cycle[k].clone(), cycle[(k + 1) % n].clone()))
            .expect("every cycle edge came from the edge map")
    };
    let first_edge = lookup(0);
    let mut others = Vec::new();
    for k in 1..n {
        let e = lookup(k);
        others.push(format!(
            "{}:{}:{} (fn `{}`) acquires `{}` while holding `{}`",
            e.acq_site.path,
            e.acq_site.line,
            e.acq_site.col,
            e.acq_site.func,
            cycle[(k + 1) % n],
            cycle[k],
        ));
    }
    let held = &first_edge.hold_site;
    Diagnostic {
        rule: Rule::LockOrder,
        path: first_edge.acq_site.path.clone(),
        line: first_edge.acq_site.line,
        col: first_edge.acq_site.col,
        message: format!("lock-order cycle: {}", chain.join(" → ")),
        snippet: None,
        help: if others.is_empty() {
            format!(
                "`{}` is re-acquired while already held (taken at {}:{}:{} in fn `{}`); \
                 a std::sync lock self-deadlocks — restructure so the guard is \
                 dropped first",
                cycle[0], held.path, held.line, held.col, held.func
            )
        } else {
            format!(
                "this acquisition holds `{}` (taken at {}:{}:{} in fn `{}`); the \
                 opposite order is taken at {} — impose one global acquisition \
                 order (DESIGN.md §13)",
                cycle[0],
                held.path,
                held.line,
                held.col,
                held.func,
                others.join("; ")
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::lex;

    /// Builds a collector over (path, src) files all in one crate.
    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut collector = Collector::new();
        let mut krate = CrateItems::default();
        let mut lexed = Vec::new();
        for (path, src) in files {
            let tokens = lex(src);
            let items = items::collect(&tokens);
            krate.absorb(&items);
            lexed.push((path, tokens, items));
        }
        collector.add_crate("fc-demo", &krate);
        for (path, tokens, items) in &lexed {
            collector.add_file("fc-demo", path, tokens, items);
        }
        collector.finish()
    }

    const TWO_LOCKS: &str = "\
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
";

    #[test]
    fn opposite_order_is_a_cycle() {
        let body = format!(
            "{TWO_LOCKS}\
impl S {{
    fn ab(&self) {{
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }}
    fn ba(&self) {{
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }}
}}
"
        );
        let diags = run(&[("src/lib.rs", &body)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule.code(), "FC009");
        assert!(
            diags[0].message.contains("fc-demo::a"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].message.contains("fc-demo::b"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].help.contains("opposite order"),
            "{}",
            diags[0].help
        );
    }

    /// `let r = helper(s).field.method(..);` binds the *result*, not the
    /// guard: the guard is a statement temporary and must not be held at
    /// the next acquisition (the focus-serve admission pre-check idiom).
    #[test]
    fn projected_helper_result_does_not_hold_the_guard() {
        let body = format!(
            "{TWO_LOCKS}\
fn lock_a(s: &S) -> std::sync::MutexGuard<'_, u32> {{
    s.a.lock().unwrap()
}}
pub fn precheck_then_act(s: &S) {{
    let over = *lock_a(s) > 0;
    if over {{
        return;
    }}
    let ga = lock_a(s);
    drop(ga);
}}
"
        );
        let diags = run(&[("src/lib.rs", &body)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let body = format!(
            "{TWO_LOCKS}\
impl S {{
    fn ab(&self) {{
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }}
    fn also_ab(&self) {{
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }}
}}
"
        );
        assert!(run(&[("src/lib.rs", &body)]).is_empty());
    }

    #[test]
    fn drop_releases_before_second_acquisition() {
        let body = format!(
            "{TWO_LOCKS}\
impl S {{
    fn ab(&self) {{
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        drop(gb);
    }}
    fn ba(&self) {{
        let gb = self.b.lock();
        drop(gb);
        let ga = self.a.lock();
        drop(ga);
    }}
}}
"
        );
        assert!(run(&[("src/lib.rs", &body)]).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let body = format!(
            "{TWO_LOCKS}\
impl S {{
    fn ab(&self) {{
        self.a.lock().unwrap();
        self.b.lock().unwrap();
    }}
    fn ba(&self) {{
        self.b.lock().unwrap();
        self.a.lock().unwrap();
    }}
}}
"
        );
        assert!(run(&[("src/lib.rs", &body)]).is_empty());
    }

    #[test]
    fn guard_helper_propagates_to_call_sites() {
        // fc-serve's idiom: a free fn returns the Core guard; one caller
        // then takes `names` — another takes them in the opposite order.
        let body = "\
use std::sync::{Mutex, MutexGuard};
pub struct Shared { core: Mutex<u32>, names: Mutex<u32> }
fn lock_core(shared: &Shared) -> MutexGuard<'_, u32> {
    shared.core.lock().unwrap()
}
fn core_then_names(shared: &Shared) {
    let g = lock_core(shared);
    let n = shared.names.lock();
    drop(n);
    drop(g);
}
fn names_then_core(shared: &Shared) {
    let n = shared.names.lock();
    let g = lock_core(shared);
    drop(g);
    drop(n);
}
";
        let diags = run(&[("src/lib.rs", body)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("core"), "{}", diags[0].message);
        assert!(diags[0].message.contains("names"), "{}", diags[0].message);
    }

    #[test]
    fn param_lock_helper_resolves_arguments() {
        // fc-obs's idiom: a generic poison-tolerant helper. Opposite-order
        // callers through the helper must still form a cycle.
        let body = "\
use std::sync::{Mutex, MutexGuard};
pub struct R { counters: Mutex<u32>, gauges: Mutex<u32> }
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap()
}
impl R {
    fn cg(&self) {
        let c = lock(&self.counters);
        let g = lock(&self.gauges);
        drop(g);
        drop(c);
    }
    fn gc(&self) {
        let g = lock(&self.gauges);
        let c = lock(&self.counters);
        drop(c);
        drop(g);
    }
}
";
        let diags = run(&[("src/lib.rs", body)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("counters"),
            "{}",
            diags[0].message
        );
        assert!(diags[0].message.contains("gauges"), "{}", diags[0].message);
    }

    #[test]
    fn self_deadlock_is_reported() {
        let body = "\
use std::sync::Mutex;
pub struct S { a: Mutex<u32> }
impl S {
    fn twice(&self) {
        let g = self.a.lock();
        let h = self.a.lock();
        drop(h);
        drop(g);
    }
}
";
        let diags = run(&[("src/lib.rs", body)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].help.contains("re-acquired"), "{}", diags[0].help);
    }

    #[test]
    fn cross_file_fields_resolve_through_the_crate_table() {
        let decl = "\
use std::sync::Mutex;
pub struct Shared { pub core: Mutex<u32>, pub names: Mutex<u32> }
";
        let use_a = "\
pub fn ab(shared: &crate::Shared) {
    let a = shared.core.lock();
    let b = shared.names.lock();
    drop(b);
    drop(a);
}
";
        let use_b = "\
pub fn ba(shared: &crate::Shared) {
    let b = shared.names.lock();
    let a = shared.core.lock();
    drop(a);
    drop(b);
}
";
        let diags = run(&[
            ("src/state.rs", decl),
            ("src/a.rs", use_a),
            ("src/b.rs", use_b),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn unrelated_read_and_write_calls_are_ignored() {
        let body = "\
use std::io::Read;
fn f(mut r: impl Read) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = r.read(&mut buf);
    buf
}
";
        assert!(run(&[("src/lib.rs", body)]).is_empty());
    }
}
