//! The Focus-specific lint rules, run over one lexed source file (FC001,
//! FC002, FC004, FC005, FC006) or one crate's module list (FC003).

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Token, TokenKind};

/// Graph/partition state whose public mutators must be invariant-checked
/// (rule FC004): the overlap graph, the coarsened multilevel set, the hybrid
/// set, and level graphs (paper §II–§IV).
const MUTATION_GUARDED_TYPES: [&str; 5] = [
    "DiGraph",
    "HybridSet",
    "MultilevelSet",
    "LevelGraph",
    "GraphSet",
];

/// Analyzes one library source file and returns all findings.
///
/// `rel_path` is the workspace-relative path used in diagnostics.
pub fn analyze_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let excluded = test_spans(&tokens);
    let lines: Vec<&str> = src.lines().collect();
    let snippet =
        |line: usize| -> Option<String> { lines.get(line.wrapping_sub(1)).map(|l| l.to_string()) };

    let mut out = Vec::new();
    no_panic(rel_path, &tokens, &excluded, &snippet, &mut out);
    no_print(rel_path, &tokens, &excluded, &snippet, &mut out);
    no_unbounded_queue(rel_path, &tokens, &excluded, &lines, &snippet, &mut out);
    pub_fn_rules(rel_path, &tokens, &excluded, &snippet, &mut out);
    out
}

/// Flags near-colliding module filenames within one crate (FC003).
///
/// Two stems collide when one is a prefix of the other and they differ by at
/// most two trailing characters (`error` vs `errors`). Stems that differ by
/// substitution (`fasta` vs `fastq`) are distinct on purpose and not
/// flagged.
pub fn module_collisions(crate_rel: &str, stems: &[(String, String)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..stems.len() {
        for j in i + 1..stems.len() {
            let (a, pa) = &stems[i];
            let (b, pb) = &stems[j];
            if a == b {
                continue;
            }
            let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            if long.starts_with(short.as_str()) && long.len() - short.len() <= 2 {
                out.push(Diagnostic {
                    rule: Rule::ModuleCollision,
                    path: crate_rel.to_string(),
                    line: 0,
                    col: 0,
                    message: format!("module names `{pa}` and `{pb}` collide up to a suffix"),
                    snippet: None,
                    help: "rename one module so imports cannot be confused \
                           (e.g. `errors.rs` → `error_removal.rs`)"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// Marks every token inside `#[cfg(test)]` items, `#[test]` functions, and
/// other test-gated items as excluded from the lint rules.
fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut excluded = vec![false; tokens.len()];
    let mut i = 0usize;
    let mut pending_test = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('#') && tokens.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            pending_test |= is_test;
            i = attr_end;
            continue;
        }
        if pending_test && t.kind == TokenKind::Ident && is_item_keyword(&t.text) {
            let end = skip_item(tokens, i);
            for flag in excluded.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            pending_test = false;
            i = end;
            continue;
        }
        // Any other real token between the attribute and its item (doc
        // comments and further attributes are handled above) cancels the
        // pending flag; `pub`/`unsafe`/`async`/`const`/`extern` prefix an
        // item and keep it.
        if pending_test
            && t.kind == TokenKind::Ident
            && !matches!(
                t.text.as_str(),
                "pub" | "unsafe" | "async" | "const" | "extern"
            )
            && t.kind != TokenKind::DocComment
        {
            pending_test = false;
        }
        i += 1;
    }
    excluded
}

/// Scans the attribute starting at the `[` token index; returns the index
/// just past the closing `]` and whether the attribute gates test code.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(&t.text);
        }
        i += 1;
    }
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]` gate test code;
    // `#[cfg(not(test))]` does not. `not` anywhere makes us conservative.
    let is_test = match idents.as_slice() {
        ["test"] => true,
        [first, rest @ ..] if *first == "cfg" => rest.contains(&"test") && !rest.contains(&"not"),
        _ => false,
    };
    (i, is_test)
}

fn is_item_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "mod"
            | "struct"
            | "enum"
            | "impl"
            | "trait"
            | "const"
            | "static"
            | "type"
            | "macro_rules"
            | "use"
    )
}

/// Returns the token index just past the item starting at `start` (an item
/// keyword): past the matching `}` of its body, or past the terminating `;`.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    let mut brace_depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            brace_depth += 1;
        } else if t.is_punct('}') {
            brace_depth -= 1;
            if brace_depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && brace_depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// FC001 — panic-family calls in non-test library code.
fn no_panic(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |c: char| tokens.get(i + 1).map(|n| n.is_punct(c)).unwrap_or(false);
        let prev_is_dot = i > 0 && tokens[i - 1].is_punct('.');
        let found = match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is('(') => {
                Some(format!("`.{}()` in non-test library code", t.text))
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is('!') => {
                Some(format!("`{}!` in non-test library code", t.text))
            }
            _ => None,
        };
        if let Some(message) = found {
            out.push(Diagnostic {
                rule: Rule::NoPanic,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                snippet: snippet(t.line),
                help: "return a typed error (FocusError/DistError/SeqError/...) so the \
                       failure can cross crate boundaries; if this site is provably \
                       unreachable, allowlist it in xtask/allow.toml with a reason"
                    .to_string(),
            });
        }
    }
}

/// FC005 — raw print-macro diagnostics in non-test library code. Library
/// crates report through fc-obs (events, counters, histograms); stdout and
/// stderr belong to binaries (`src/bin`, benches, xtask), which are not
/// linted.
fn no_print(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is_bang = tokens.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false);
        // `writeln!` et al. target an explicit writer and are fine; only the
        // implicit-stdout/stderr family is banned.
        if next_is_bang
            && matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
        {
            out.push(Diagnostic {
                rule: Rule::NoPrint,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("`{}!` in non-test library code", t.text),
                snippet: snippet(t.line),
                help: "record an fc-obs event or metric instead (Recorder::instant/add/\
                       observe) and let the binary choose the sink; if this print is \
                       intentional, allowlist it in xtask/allow.toml with a reason"
                    .to_string(),
            });
        }
    }
}

/// FC006 — unbounded channel/queue constructors in non-test library code.
///
/// Flags `unbounded(...)`/`unbounded_channel(...)`, `mpsc::channel(...)`
/// (std's unbounded flavour; `sync_channel` is fine) and
/// `Injector::new(...)` outright — a producer that outruns its consumer
/// grows these without limit, so admission control has to live somewhere
/// and the allowlist entry is where its reason is recorded. `VecDeque`
/// constructors are flagged too, unless the word "bound" (as in "bounded
/// by", "capacity bound") appears on the same or one of the four
/// preceding source lines — a Vec-backed queue is legitimate exactly when
/// the surrounding code states what bounds it.
fn no_unbounded_queue(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    lines: &[&str],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    let documented_bound = |line: usize| {
        // `line` is 1-based: inspect it and up to 4 preceding raw lines.
        (line.saturating_sub(5)..line)
            .filter_map(|idx| lines.get(idx))
            .any(|l| l.to_ascii_lowercase().contains("bound"))
    };
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let punct_at =
            |k: usize, c: char| tokens.get(i + k).map(|n| n.is_punct(c)).unwrap_or(false);
        let ident_at = |k: usize| {
            tokens
                .get(i + k)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.as_str())
        };
        // `Type::ctor(` — the constructor ident two `:` puncts ahead.
        let path_ctor = || {
            (punct_at(1, ':') && punct_at(2, ':') && punct_at(4, '('))
                .then(|| ident_at(3))
                .flatten()
        };
        let found = match t.text.as_str() {
            "unbounded" | "unbounded_channel" if punct_at(1, '(') => Some((
                format!("`{}(..)` creates an unbounded channel", t.text),
                "use a bounded channel sized from a config capacity, or allowlist \
                 in xtask/allow.toml stating what bounds the producer",
            )),
            "channel"
                if punct_at(1, '(')
                    && i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].is_ident("mpsc") =>
            {
                Some((
                    "`mpsc::channel(..)` is unbounded".to_string(),
                    "use `mpsc::sync_channel(cap)` with a config-derived capacity, or \
                     allowlist in xtask/allow.toml stating what bounds the producer",
                ))
            }
            "Injector" if path_ctor() == Some("new") => Some((
                "`Injector::new()` is an unbounded work queue".to_string(),
                "bound what gets pushed (chunk the input) and allowlist in \
                 xtask/allow.toml stating that bound",
            )),
            "VecDeque"
                if matches!(path_ctor(), Some("new" | "with_capacity" | "from"))
                    && !documented_bound(t.line) =>
            {
                Some((
                    "`VecDeque` queue without a documented capacity bound".to_string(),
                    "state the bound in a comment on or just above this line (e.g. \
                     \"bounded by cfg.capacity, checked in admit\"), size it from \
                     config, or allowlist in xtask/allow.toml with a reason",
                ))
            }
            _ => None,
        };
        if let Some((message, help)) = found {
            out.push(Diagnostic {
                rule: Rule::NoUnboundedQueue,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                snippet: snippet(t.line),
                help: help.to_string(),
            });
        }
    }
}

/// Everything about one `pub fn` signature the rules need.
struct PubFn {
    name: String,
    line: usize,
    col: usize,
    /// Tokens between the signature's outer parentheses.
    params: Vec<Token>,
    /// Tokens after `->` up to the body/terminator.
    ret: Vec<Token>,
    /// Doc-comment lines immediately preceding the item.
    docs: Vec<String>,
}

/// FC002 + FC004 — rules over public function signatures.
fn pub_fn_rules(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    for f in collect_pub_fns(tokens, excluded) {
        let mut sig = f.params.clone();
        sig.extend(f.ret.iter().cloned());
        if let Some(line) = find_result_string(&sig) {
            out.push(Diagnostic {
                rule: Rule::StringError,
                path: rel_path.to_string(),
                line,
                col: 0,
                message: format!(
                    "`Result<_, String>` in the public signature of `{}`",
                    f.name
                ),
                snippet: snippet(f.line),
                help: "use a typed error enum so callers can match on the failure mode".to_string(),
            });
        }
        if let Some(ty) = mutates_guarded_state(&f.params) {
            let returns_result = f.ret.iter().any(|t| t.is_ident("Result"));
            let has_invariants_doc = f.docs.iter().any(|d| d.trim().starts_with("# Invariants"));
            if !returns_result && !has_invariants_doc {
                out.push(Diagnostic {
                    rule: Rule::InvariantDoc,
                    path: rel_path.to_string(),
                    line: f.line,
                    col: f.col,
                    message: format!(
                        "pub fn `{}` mutates `{ty}` but neither returns a typed \
                         `Result` nor documents a `# Invariants` section",
                        f.name
                    ),
                    snippet: snippet(f.line),
                    help: "either return a typed error for violated preconditions, or \
                           add a `# Invariants` doc section stating what the mutation \
                           preserves"
                        .to_string(),
                });
            }
        }
    }
}

/// Walks the token stream collecting truly-public (`pub`, not `pub(crate)`)
/// functions outside test spans, with their docs, params, and return type.
fn collect_pub_fns(tokens: &[Token], excluded: &[bool]) -> Vec<PubFn> {
    let mut out = Vec::new();
    let mut docs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::DocComment {
            docs.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct('#') && tokens.get(i + 1).map(|n| n.is_punct('[')).unwrap_or(false) {
            // Attributes between docs and the item keep the docs alive.
            let (end, _) = scan_attribute(tokens, i + 1);
            i = end;
            continue;
        }
        if excluded[i] || !t.is_ident("pub") {
            if !(t.is_ident("pub") && excluded[i]) && t.kind != TokenKind::DocComment {
                docs.clear();
            }
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` / `pub(in ...)` are not public API.
        if tokens.get(j).map(|n| n.is_punct('(')).unwrap_or(false) {
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            docs.clear();
            i = j;
            continue;
        }
        // Skip qualifiers: `pub const fn`, `pub async unsafe fn`, ...
        while tokens
            .get(j)
            .map(|n| matches!(n.text.as_str(), "const" | "async" | "unsafe" | "extern"))
            .unwrap_or(false)
            || tokens
                .get(j)
                .map(|n| n.kind == TokenKind::Literal)
                .unwrap_or(false)
        {
            j += 1;
        }
        if !tokens.get(j).map(|n| n.is_ident("fn")).unwrap_or(false) {
            docs.clear();
            i = j.max(i + 1);
            continue;
        }
        let Some(name_tok) = tokens.get(j + 1) else {
            break;
        };
        if let Some(f) = parse_signature(tokens, j + 1) {
            out.push(PubFn {
                name: name_tok.text.clone(),
                line: name_tok.line,
                col: name_tok.col,
                params: f.0,
                ret: f.1,
                docs: std::mem::take(&mut docs),
            });
        }
        docs.clear();
        i = j + 1;
    }
    out
}

/// From the fn-name token index, splits the signature into parameter tokens
/// (inside the outer parens) and return tokens (after `->`, before the body
/// `{` or `;`).
fn parse_signature(tokens: &[Token], name_idx: usize) -> Option<(Vec<Token>, Vec<Token>)> {
    let mut i = name_idx + 1;
    // Skip generics on the name: `fn foo<'a, T: Bound>(...)`.
    if tokens.get(i).map(|t| t.is_punct('<')).unwrap_or(false) {
        let mut depth = 0isize;
        while i < tokens.len() {
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if tokens[i].is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    if !tokens.get(i).map(|t| t.is_punct('(')).unwrap_or(false) {
        return None;
    }
    let mut depth = 0usize;
    let mut params = Vec::new();
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
            if depth == 1 {
                i += 1;
                continue;
            }
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        }
        params.push(tokens[i].clone());
        i += 1;
    }
    // Return type: `-> ... {` or `-> ... ;` or `-> ... where`.
    let mut ret = Vec::new();
    if tokens.get(i).map(|t| t.is_punct('-')).unwrap_or(false)
        && tokens.get(i + 1).map(|t| t.is_punct('>')).unwrap_or(false)
    {
        i += 2;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            ret.push(t.clone());
            i += 1;
        }
    }
    Some((params, ret))
}

/// Finds `Result<_, String>` (or `..::Result<_, String>`) in signature
/// tokens; returns the line of the offending `Result` if present.
fn find_result_string(sig: &[Token]) -> Option<usize> {
    for (i, t) in sig.iter().enumerate() {
        if !t.is_ident("Result") || !sig.get(i + 1).map(|n| n.is_punct('<')).unwrap_or(false) {
            continue;
        }
        // Walk the generic arguments, splitting at depth-1 commas.
        let mut depth = 0isize;
        let mut args: Vec<Vec<&Token>> = vec![Vec::new()];
        let mut j = i + 1;
        while j < sig.len() {
            let u = &sig[j];
            if u.is_punct('<') {
                depth += 1;
                if depth == 1 {
                    j += 1;
                    continue;
                }
            } else if u.is_punct('>') && !(j > 0 && sig[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if u.is_punct(',') && depth == 1 {
                args.push(Vec::new());
                j += 1;
                continue;
            }
            if let Some(last) = args.last_mut() {
                last.push(u);
            }
            j += 1;
        }
        if args.len() >= 2 {
            let err = &args[args.len() - 1];
            let is_string = matches!(
                err.as_slice(),
                [t] if t.is_ident("String")
            ) || err.len() >= 3
                && err[err.len() - 1].is_ident("String")
                && err[err.len() - 2].is_punct(':')
                && err[err.len() - 3].is_punct(':');
            if is_string {
                return Some(t.line);
            }
        }
    }
    None
}

/// Does the parameter list mutate guarded assembly state? Returns the name
/// of the first guarded type found behind a `&mut`.
fn mutates_guarded_state(params: &[Token]) -> Option<String> {
    // Split params at top-level commas; inspect each param independently.
    let mut depth = 0isize;
    let mut start = 0usize;
    let mut spans = Vec::new();
    for (i, t) in params.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
            ">" if t.kind == TokenKind::Punct && !(i > 0 && params[i - 1].is_punct('-')) => {
                depth -= 1
            }
            "," if t.kind == TokenKind::Punct && depth == 0 => {
                spans.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < params.len() {
        spans.push(&params[start..]);
    }
    for span in spans {
        // Find `& [lifetime]? mut` within this param.
        let mut k = 0usize;
        let mut is_mut_ref = false;
        while k < span.len() {
            if span[k].is_punct('&') {
                let mut m = k + 1;
                if span
                    .get(m)
                    .map(|t| t.kind == TokenKind::Lifetime)
                    .unwrap_or(false)
                {
                    m += 1;
                }
                if span.get(m).map(|t| t.is_ident("mut")).unwrap_or(false) {
                    is_mut_ref = true;
                    break;
                }
            }
            k += 1;
        }
        if !is_mut_ref {
            continue;
        }
        if let Some(ty) = span.iter().find_map(|t| {
            MUTATION_GUARDED_TYPES
                .iter()
                .find(|g| t.is_ident(g))
                .map(|g| g.to_string())
        }) {
            return Some(ty);
        }
        // `parts: &mut [u32]` / `&mut Vec<u32>` — a partition vector when the
        // parameter name says so.
        let param_name = span.first().filter(|t| t.kind == TokenKind::Ident);
        let named_parts = param_name.map(|t| t.text.contains("part")).unwrap_or(false);
        let is_u32_seq = span.iter().any(|t| t.is_ident("u32"))
            && span.iter().any(|t| t.is_punct('[') || t.is_ident("Vec"));
        if named_parts && is_u32_seq {
            return Some("partition vector".to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<(&'static str, usize)> {
        analyze_file("lib.rs", src)
            .into_iter()
            .map(|d| (d.rule.code(), d.line))
            .collect()
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let src = "pub fn f(v: Vec<u32>) -> u32 {\n    v.first().copied().unwrap()\n}\n";
        assert_eq!(rules_hit(src), vec![("FC001", 2)]);
    }

    #[test]
    fn flags_every_panic_macro() {
        let src = "fn a() { panic!(\"x\") }\nfn b() { unreachable!() }\nfn c() { todo!() }\nfn d() { unimplemented!() }\n";
        let hits = rules_hit(src);
        assert_eq!(hits.len(), 4, "{hits:?}");
    }

    #[test]
    fn ignores_unwrap_or_family() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0).max(v.unwrap_or_default()) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn ignores_test_modules_and_test_fns() {
        let src = r#"
fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}

#[test]
fn top_level_test() { None::<u32>.unwrap(); }
"#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn cfg_any_test_is_test_code() {
        let src =
            "#[cfg(any(test, feature = \"slow\"))]\nmod helpers { pub fn h() { panic!() } }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let src = "#[cfg(not(test))]\nmod real { pub fn r() { panic!() } }\n";
        assert_eq!(rules_hit(src), vec![("FC001", 2)]);
    }

    #[test]
    fn code_after_test_module_is_still_linted() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n\npub fn later() { panic!() }\n";
        assert_eq!(rules_hit(src), vec![("FC001", 4)]);
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = "// v.unwrap()\nfn f() -> &'static str { \"panic!()\" }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn flags_result_string_in_pub_signature() {
        let src = "pub fn parse(s: &str) -> Result<u32, String> { s.parse().map_err(|e| format!(\"{e}\")) }\n";
        assert_eq!(rules_hit(src), vec![("FC002", 1)]);
    }

    #[test]
    fn nested_ok_type_does_not_confuse_fc002() {
        let src = "pub fn f() -> Result<Vec<String>, std::io::Error> { Ok(Vec::new()) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn private_and_crate_fns_escape_fc002() {
        let src = "fn a() -> Result<u32, String> { Ok(1) }\npub(crate) fn b() -> Result<u32, String> { Ok(2) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn qualified_string_error_is_flagged() {
        let src = "pub fn f() -> Result<(), std::string::String> { Ok(()) }\n";
        assert_eq!(rules_hit(src), vec![("FC002", 1)]);
    }

    #[test]
    fn mutator_without_docs_or_result_is_flagged() {
        let src = "pub fn remove_all(g: &mut DiGraph, nodes: &[u32]) -> usize { nodes.len() }\n";
        assert_eq!(rules_hit(src), vec![("FC004", 1)]);
    }

    #[test]
    fn mutator_with_invariants_doc_passes() {
        let src = "/// Removes nodes.\n///\n/// # Invariants\n/// Keeps edge weights conserved.\npub fn remove_all(g: &mut DiGraph) -> usize { 0 }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn mutator_returning_result_passes() {
        let src = "pub fn remove_all(g: &mut DiGraph) -> Result<usize, DistError> { Ok(0) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn partition_vector_param_is_guarded() {
        let src = "pub fn rebalance(parts: &mut [u32], k: usize) {}\n";
        assert_eq!(rules_hit(src), vec![("FC004", 1)]);
    }

    #[test]
    fn shared_ref_is_not_a_mutation() {
        let src = "pub fn inspect(g: &DiGraph, parts: &[u32]) -> usize { parts.len() }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn attributes_between_docs_and_fn_keep_docs() {
        let src = "/// # Invariants\n/// ok\n#[inline]\npub fn m(g: &mut DiGraph) {}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn flags_print_macros_in_library_code() {
        let src = "pub fn f() { println!(\"x\"); eprintln!(\"y\"); }\nfn g() { dbg!(1); print!(\"a\"); eprint!(\"b\"); }\n";
        let hits = rules_hit(src);
        assert_eq!(
            hits.iter().filter(|(c, _)| *c == "FC005").count(),
            5,
            "{hits:?}"
        );
    }

    #[test]
    fn prints_in_tests_and_writeln_escape_fc005() {
        let src = r#"
use std::fmt::Write;
pub fn render() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "structured output is fine");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!("debugging a test is fine"); }
}
"#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn flags_unbounded_channels_and_injector() {
        let src = "\
fn a() { let (tx, rx) = crossbeam::channel::unbounded(); }
fn b() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }
fn c() { let inj: Injector<u32> = Injector::new(); }
fn d() { let (tx, rx) = std::sync::mpsc::sync_channel(16); }
";
        let hits = rules_hit(src);
        assert_eq!(
            hits.iter().filter(|(c, _)| *c == "FC006").count(),
            2,
            "{hits:?}"
        );
        // Turbofish on `channel::<u32>` hides the call parens from the
        // simple pattern; the plain form and `unbounded` are caught, and
        // `sync_channel` is never flagged.
        assert!(hits.contains(&("FC006", 1)), "{hits:?}");
        assert!(hits.contains(&("FC006", 3)), "{hits:?}");
    }

    #[test]
    fn vecdeque_needs_a_documented_bound() {
        let bare = "fn f() { let q = std::collections::VecDeque::from([1u32]); }\n";
        assert_eq!(rules_hit(bare), vec![("FC006", 1)]);
        let documented = "\
fn f() {
    // Bounded by the node count: each node is pushed at most once.
    let q = std::collections::VecDeque::from([1u32]);
}
";
        assert!(rules_hit(documented).is_empty());
        let same_line = "fn f() { let q: std::collections::VecDeque<u32> = std::collections::VecDeque::new(); /* bounded by admit() */ }\n";
        assert!(rules_hit(same_line).is_empty());
    }

    #[test]
    fn queues_in_tests_escape_fc006() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let q = std::collections::VecDeque::from([1]); }\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn module_collision_prefix_only() {
        let stems = vec![
            ("error".to_string(), "src/error.rs".to_string()),
            ("errors".to_string(), "src/errors.rs".to_string()),
            ("fasta".to_string(), "src/fasta.rs".to_string()),
            ("fastq".to_string(), "src/fastq.rs".to_string()),
        ];
        let diags = module_collisions("crates/dist", &stems);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("error.rs"));
        assert!(diags[0].message.contains("errors.rs"));
    }
}
