//! The Focus-specific lint rules, run over one lexed source file (FC001,
//! FC002, FC004, FC005, FC006, and the path-aware FC007/FC008/FC010/FC011)
//! or one crate's module list (FC003). FC009, the cross-crate lock-order
//! audit, lives in [`crate::lockorder`].

use crate::diag::{Diagnostic, Rule};
use crate::items::{self, paths, CrateItems, FileItems};
use crate::lexer::{lex, Token, TokenKind};

/// Graph/partition state whose public mutators must be invariant-checked
/// (rule FC004): the overlap graph, the coarsened multilevel set, the hybrid
/// set, and level graphs (paper §II–§IV).
const MUTATION_GUARDED_TYPES: [&str; 5] = [
    "DiGraph",
    "HybridSet",
    "MultilevelSet",
    "LevelGraph",
    "GraphSet",
];

/// Analyzes one library source file in isolation: lexes it, builds its own
/// item table, and runs every per-file rule. The workspace driver uses
/// [`analyze_tokens`] instead so item tables are built once and shared
/// crate-wide.
pub fn analyze_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let file_items = items::collect(&tokens);
    let mut krate = CrateItems::default();
    krate.absorb(&file_items);
    analyze_tokens("", rel_path, src, &tokens, &file_items, &krate)
}

/// Runs every per-file rule over an already-lexed file with its item tables.
///
/// `crate_name` gates the crate-level exemptions (fc-obs is the one
/// sanctioned wall-clock sink, so FC008 skips it); `rel_path` is the
/// workspace-relative path used in diagnostics.
pub fn analyze_tokens(
    crate_name: &str,
    rel_path: &str,
    src: &str,
    tokens: &[Token],
    file_items: &FileItems,
    krate: &CrateItems,
) -> Vec<Diagnostic> {
    let excluded = test_spans(tokens);
    let lines: Vec<&str> = src.lines().collect();
    let snippet =
        |line: usize| -> Option<String> { lines.get(line.wrapping_sub(1)).map(|l| l.to_string()) };

    let mut out = Vec::new();
    no_panic(rel_path, tokens, &excluded, &snippet, &mut out);
    no_print(rel_path, tokens, &excluded, &snippet, &mut out);
    no_unbounded_queue(rel_path, tokens, &excluded, &lines, &snippet, &mut out);
    pub_fn_rules(rel_path, tokens, &excluded, &snippet, &mut out);
    nondet_iteration(
        rel_path, tokens, &excluded, file_items, krate, &snippet, &mut out,
    );
    ambient_nondet(
        crate_name, rel_path, tokens, &excluded, file_items, &snippet, &mut out,
    );
    unsafe_hygiene(rel_path, tokens, &excluded, &lines, &snippet, &mut out);
    unbounded_read(rel_path, tokens, &excluded, file_items, &snippet, &mut out);
    out
}

/// Flags near-colliding module filenames within one crate (FC003).
///
/// Two stems collide when one is a prefix of the other and they differ by at
/// most two trailing characters (`error` vs `errors`). Stems that differ by
/// substitution (`fasta` vs `fastq`) are distinct on purpose and not
/// flagged.
pub fn module_collisions(crate_rel: &str, stems: &[(String, String)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..stems.len() {
        for j in i + 1..stems.len() {
            let (a, pa) = &stems[i];
            let (b, pb) = &stems[j];
            if a == b {
                continue;
            }
            let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            if long.starts_with(short.as_str()) && long.len() - short.len() <= 2 {
                out.push(Diagnostic {
                    rule: Rule::ModuleCollision,
                    path: crate_rel.to_string(),
                    line: 0,
                    col: 0,
                    message: format!("module names `{pa}` and `{pb}` collide up to a suffix"),
                    snippet: None,
                    help: "rename one module so imports cannot be confused \
                           (e.g. `errors.rs` → `error_removal.rs`)"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// Marks every token inside `#[cfg(test)]` items, `#[test]` functions, and
/// other test-gated items as excluded from the lint rules.
pub(crate) fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut excluded = vec![false; tokens.len()];
    let mut i = 0usize;
    let mut pending_test = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('#') && tokens.get(i + 1).map(|t| t.is_punct('[')).unwrap_or(false) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            pending_test |= is_test;
            i = attr_end;
            continue;
        }
        if pending_test && t.kind == TokenKind::Ident && is_item_keyword(&t.text) {
            let end = skip_item(tokens, i);
            for flag in excluded.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            pending_test = false;
            i = end;
            continue;
        }
        // Any other real token between the attribute and its item (doc
        // comments and further attributes are handled above) cancels the
        // pending flag; `pub`/`unsafe`/`async`/`const`/`extern` prefix an
        // item and keep it.
        if pending_test
            && t.kind == TokenKind::Ident
            && !matches!(
                t.text.as_str(),
                "pub" | "unsafe" | "async" | "const" | "extern"
            )
            && t.kind != TokenKind::DocComment
        {
            pending_test = false;
        }
        i += 1;
    }
    excluded
}

/// Scans the attribute starting at the `[` token index; returns the index
/// just past the closing `]` and whether the attribute gates test code.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(&t.text);
        }
        i += 1;
    }
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]` gate test code;
    // `#[cfg(not(test))]` does not. `not` anywhere makes us conservative.
    let is_test = match idents.as_slice() {
        ["test"] => true,
        [first, rest @ ..] if *first == "cfg" => rest.contains(&"test") && !rest.contains(&"not"),
        _ => false,
    };
    (i, is_test)
}

fn is_item_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "mod"
            | "struct"
            | "enum"
            | "impl"
            | "trait"
            | "const"
            | "static"
            | "type"
            | "macro_rules"
            | "use"
    )
}

/// Returns the token index just past the item starting at `start` (an item
/// keyword): past the matching `}` of its body, or past the terminating `;`.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    let mut brace_depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            brace_depth += 1;
        } else if t.is_punct('}') {
            brace_depth -= 1;
            if brace_depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && brace_depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// FC001 — panic-family calls in non-test library code.
fn no_panic(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |c: char| tokens.get(i + 1).map(|n| n.is_punct(c)).unwrap_or(false);
        let prev_is_dot = i > 0 && tokens[i - 1].is_punct('.');
        let found = match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is('(') => {
                Some(format!("`.{}()` in non-test library code", t.text))
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is('!') => {
                Some(format!("`{}!` in non-test library code", t.text))
            }
            _ => None,
        };
        if let Some(message) = found {
            out.push(Diagnostic {
                rule: Rule::NoPanic,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                snippet: snippet(t.line),
                help: "return a typed error (FocusError/DistError/SeqError/...) so the \
                       failure can cross crate boundaries; if this site is provably \
                       unreachable, allowlist it in xtask/allow.toml with a reason"
                    .to_string(),
            });
        }
    }
}

/// FC005 — raw print-macro diagnostics in non-test library code. Library
/// crates report through fc-obs (events, counters, histograms); stdout and
/// stderr belong to binaries (`src/bin`, benches, xtask), which are not
/// linted.
fn no_print(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is_bang = tokens.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false);
        // `writeln!` et al. target an explicit writer and are fine; only the
        // implicit-stdout/stderr family is banned.
        if next_is_bang
            && matches!(
                t.text.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            )
        {
            out.push(Diagnostic {
                rule: Rule::NoPrint,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("`{}!` in non-test library code", t.text),
                snippet: snippet(t.line),
                help: "record an fc-obs event or metric instead (Recorder::instant/add/\
                       observe) and let the binary choose the sink; if this print is \
                       intentional, allowlist it in xtask/allow.toml with a reason"
                    .to_string(),
            });
        }
    }
}

/// FC006 — unbounded channel/queue constructors in non-test library code.
///
/// Flags `unbounded(...)`/`unbounded_channel(...)`, `mpsc::channel(...)`
/// (std's unbounded flavour; `sync_channel` is fine) and
/// `Injector::new(...)` outright — a producer that outruns its consumer
/// grows these without limit, so admission control has to live somewhere
/// and the allowlist entry is where its reason is recorded. `VecDeque`
/// constructors are flagged too, unless the word "bound" (as in "bounded
/// by", "capacity bound") appears on the same or one of the four
/// preceding source lines — a Vec-backed queue is legitimate exactly when
/// the surrounding code states what bounds it.
fn no_unbounded_queue(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    lines: &[&str],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    let documented_bound = |line: usize| {
        // `line` is 1-based: inspect it and up to 4 preceding raw lines.
        (line.saturating_sub(5)..line)
            .filter_map(|idx| lines.get(idx))
            .any(|l| l.to_ascii_lowercase().contains("bound"))
    };
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let punct_at =
            |k: usize, c: char| tokens.get(i + k).map(|n| n.is_punct(c)).unwrap_or(false);
        let ident_at = |k: usize| {
            tokens
                .get(i + k)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.as_str())
        };
        // `Type::ctor(` — the constructor ident two `:` puncts ahead.
        let path_ctor = || {
            (punct_at(1, ':') && punct_at(2, ':') && punct_at(4, '('))
                .then(|| ident_at(3))
                .flatten()
        };
        let found = match t.text.as_str() {
            "unbounded" | "unbounded_channel" if punct_at(1, '(') => Some((
                format!("`{}(..)` creates an unbounded channel", t.text),
                "use a bounded channel sized from a config capacity, or allowlist \
                 in xtask/allow.toml stating what bounds the producer",
            )),
            "channel"
                if punct_at(1, '(')
                    && i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].is_ident("mpsc") =>
            {
                Some((
                    "`mpsc::channel(..)` is unbounded".to_string(),
                    "use `mpsc::sync_channel(cap)` with a config-derived capacity, or \
                     allowlist in xtask/allow.toml stating what bounds the producer",
                ))
            }
            "Injector" if path_ctor() == Some("new") => Some((
                "`Injector::new()` is an unbounded work queue".to_string(),
                "bound what gets pushed (chunk the input) and allowlist in \
                 xtask/allow.toml stating that bound",
            )),
            "VecDeque"
                if matches!(path_ctor(), Some("new" | "with_capacity" | "from"))
                    && !documented_bound(t.line) =>
            {
                Some((
                    "`VecDeque` queue without a documented capacity bound".to_string(),
                    "state the bound in a comment on or just above this line (e.g. \
                     \"bounded by cfg.capacity, checked in admit\"), size it from \
                     config, or allowlist in xtask/allow.toml with a reason",
                ))
            }
            _ => None,
        };
        if let Some((message, help)) = found {
            out.push(Diagnostic {
                rule: Rule::NoUnboundedQueue,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                snippet: snippet(t.line),
                help: help.to_string(),
            });
        }
    }
}

/// Methods whose iteration order is the receiver's internal order. `retain`
/// and `extend` are excluded on purpose: `retain` only observes order through
/// side effects (rare, and FC007's job is the common data path), and
/// `extend`'s order question lives at the *source* of the iterator.
const NONDET_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// FC007 — iteration over `HashMap`/`HashSet` in non-test library code.
///
/// A finding fires when the receiver of an order-exposing method (or the
/// subject of a `for … in` loop) resolves — through the file's import map
/// and binding/field tables — to `std::collections::{HashMap, HashSet}`,
/// unless an adjacent canonicalizing sort follows within two lines (the
/// `collect()-then-sort_unstable()` idiom). Unresolvable receivers fail
/// open: precision over recall, with the allowlist carrying the rest.
fn nondet_iteration(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    file_items: &FileItems,
    krate: &CrateItems,
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    // A canonicalizing sort on the finding's line or the two after it
    // waives the finding: hash order was collected, then sorted away.
    let sort_nearby = |line: usize| {
        tokens.iter().any(|t| {
            t.kind == TokenKind::Ident
                && t.text.starts_with("sort")
                && t.line >= line
                && t.line <= line + 2
        })
    };
    let short = |canonical: &str| {
        canonical
            .rsplit("::")
            .next()
            .unwrap_or(canonical)
            .to_string()
    };
    let push = |out: &mut Vec<Diagnostic>, t: &Token, receiver: &str, canonical: &str| {
        out.push(Diagnostic {
            rule: Rule::NondetIteration,
            path: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message: format!(
                "iteration over `{}` (`{receiver}`) in hash order",
                short(canonical)
            ),
            snippet: snippet(t.line),
            help: "hash iteration order varies per process and breaks bit-identical \
                   output; collect-and-sort adjacently, switch the container to \
                   BTreeMap/BTreeSet, or allowlist a commutative reduction in \
                   xtask/allow.toml with a reason"
                .to_string(),
        });
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if excluded[i] || t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // `receiver.iter()` / `.keys()` / `.drain()` / ...
        if NONDET_ITER_METHODS.contains(&t.text.as_str())
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            if let Some((name, ty)) = receiver_type(tokens, i - 1, file_items, krate) {
                if (ty == paths::HASH_MAP || ty == paths::HASH_SET) && !sort_nearby(t.line) {
                    push(out, t, &name, &ty);
                }
            }
            i += 1;
            continue;
        }
        // `for pat in <header> {` — direct iteration and the
        // `collect::<HashSet<_>>()` turbofish in loop headers.
        if t.is_ident("for") {
            if let Some((in_idx, open_idx)) = for_header(tokens, i) {
                scan_for_header(
                    rel_path,
                    tokens,
                    in_idx,
                    open_idx,
                    file_items,
                    krate,
                    &sort_nearby,
                    snippet,
                    out,
                );
            }
        }
        i += 1;
    }
}

/// Resolves the receiver ending just before the `.` at `dot`: the canonical
/// type of the trailing identifier, looked up as a field when qualified
/// (`self.votes.`, `shared.core.`) and as a binding otherwise. Returns the
/// spelled name alongside. Non-identifier receivers (`)` or `]`) fail open.
fn receiver_type(
    tokens: &[Token],
    dot: usize,
    file_items: &FileItems,
    krate: &CrateItems,
) -> Option<(String, String)> {
    if dot == 0 {
        return None;
    }
    let r = &tokens[dot - 1];
    if r.kind != TokenKind::Ident || r.is_ident("self") {
        return None;
    }
    let qualified =
        dot >= 3 && tokens[dot - 2].is_punct('.') && tokens[dot - 3].kind == TokenKind::Ident;
    let ty = if qualified {
        file_items
            .fields
            .get(&r.text)
            .or_else(|| krate.fields.get(&r.text))
            .cloned()
    } else {
        file_items.type_of(krate, &r.text).map(str::to_string)
    };
    ty.map(|ty| (r.text.clone(), ty))
}

/// Locates a `for` loop's header: the index of its depth-0 `in` and of the
/// `{` opening the body.
fn for_header(tokens: &[Token], for_idx: usize) -> Option<(usize, usize)> {
    let mut depth = 0isize;
    let mut j = for_idx + 1;
    let mut in_idx = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && in_idx.is_none() && t.is_ident("in") {
            in_idx = Some(j);
        } else if depth == 0 && t.is_punct('{') {
            return in_idx.map(|i| (i, j));
        } else if t.is_punct(';') {
            return None; // malformed / not actually a loop
        }
        j += 1;
    }
    None
}

/// FC007's `for`-header checks: `for x in map {`-style direct iteration over
/// a hash container, and `for x in v.collect::<HashSet<_>>() {`. Method
/// calls inside the header (`map.drain()`) are caught by the method branch
/// of [`nondet_iteration`] and skipped here.
#[allow(clippy::too_many_arguments)]
fn scan_for_header(
    rel_path: &str,
    tokens: &[Token],
    in_idx: usize,
    open_idx: usize,
    file_items: &FileItems,
    krate: &CrateItems,
    sort_nearby: &dyn Fn(usize) -> bool,
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    // Turbofish: a `collect::<HashSet<_>>()` anywhere in the header makes
    // the loop iterate a freshly-hashed container.
    for k in in_idx..open_idx {
        if tokens[k].is_ident("collect")
            && tokens.get(k + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && tokens.get(k + 2).map(|t| t.is_punct(':')).unwrap_or(false)
            && tokens.get(k + 3).map(|t| t.is_punct('<')).unwrap_or(false)
        {
            let mut segs = Vec::new();
            let mut m = k + 4;
            while let Some(t) = tokens.get(m).filter(|t| t.kind == TokenKind::Ident) {
                segs.push(t.text.clone());
                if tokens.get(m + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                    && tokens.get(m + 2).map(|t| t.is_punct(':')).unwrap_or(false)
                {
                    m += 3;
                } else {
                    break;
                }
            }
            if segs.is_empty() {
                continue;
            }
            let canonical = items::canonicalize(&segs, file_items);
            if (canonical == paths::HASH_MAP || canonical == paths::HASH_SET)
                && !sort_nearby(tokens[k].line)
            {
                let t = &tokens[k];
                out.push(Diagnostic {
                    rule: Rule::NondetIteration,
                    path: rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`for` loop over a freshly collected `{}` in hash order",
                        canonical.rsplit("::").next().unwrap_or(&canonical)
                    ),
                    snippet: snippet(t.line),
                    help: "collect into a Vec and sort+dedup instead — same \
                           uniqueness, deterministic order"
                        .to_string(),
                });
            }
            return;
        }
    }
    // Direct iteration: `for x in [&[mut]] name {` / `... self.name {`.
    let mut j = in_idx + 1;
    while tokens
        .get(j)
        .map(|t| t.is_punct('&') || t.is_ident("mut"))
        .unwrap_or(false)
    {
        j += 1;
    }
    let Some(first) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
        return;
    };
    let (name_tok, ty) = if first.is_ident("self")
        && tokens.get(j + 1).map(|t| t.is_punct('.')).unwrap_or(false)
        && j + 3 == open_idx
    {
        let Some(field) = tokens.get(j + 2).filter(|t| t.kind == TokenKind::Ident) else {
            return;
        };
        let ty = file_items
            .fields
            .get(&field.text)
            .or_else(|| krate.fields.get(&field.text))
            .cloned();
        (field, ty)
    } else if j + 1 == open_idx {
        (
            first,
            file_items.type_of(krate, &first.text).map(str::to_string),
        )
    } else {
        return;
    };
    if let Some(ty) = ty {
        if (ty == paths::HASH_MAP || ty == paths::HASH_SET) && !sort_nearby(name_tok.line) {
            out.push(Diagnostic {
                rule: Rule::NondetIteration,
                path: rel_path.to_string(),
                line: name_tok.line,
                col: name_tok.col,
                message: format!(
                    "`for` loop over `{}` (`{}`) in hash order",
                    ty.rsplit("::").next().unwrap_or(&ty),
                    name_tok.text
                ),
                snippet: snippet(name_tok.line),
                help: "hash iteration order varies per process and breaks bit-identical \
                       output; collect-and-sort adjacently, switch the container to \
                       BTreeMap/BTreeSet, or allowlist a commutative reduction in \
                       xtask/allow.toml with a reason"
                    .to_string(),
            });
        }
    }
}

/// FC008 — ambient nondeterminism outside the sanctioned sinks.
///
/// `Instant::now`/`SystemTime::now` (resolved through the import map, so a
/// user type named `Instant` never trips it), `std::env::var`/`var_os`, and
/// `available_parallelism` are inputs from the machine and the moment; in
/// library code they may only feed fc-obs (whose whole crate is the timing
/// sink and is exempt) or an allowlisted config-layer site.
fn ambient_nondet(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    file_items: &FileItems,
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    if crate_name == "fc-obs" {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let called = tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if !called {
            continue;
        }
        let found: Option<String> = match t.text.as_str() {
            "now" => {
                let canonical =
                    path_before(tokens, i).map(|segs| items::canonicalize(&segs, file_items));
                match canonical.as_deref() {
                    Some(paths::INSTANT) => {
                        Some("`Instant::now()` reads the monotonic clock".to_string())
                    }
                    Some(paths::SYSTEM_TIME) => {
                        Some("`SystemTime::now()` reads the wall clock".to_string())
                    }
                    _ => None,
                }
            }
            "var" | "var_os" => {
                let canonical =
                    path_before(tokens, i).map(|segs| items::canonicalize(&segs, file_items));
                (canonical.as_deref() == Some("std::env"))
                    .then(|| format!("`env::{}()` reads the process environment", t.text))
            }
            "available_parallelism" => {
                Some("`available_parallelism()` reads the machine's core count".to_string())
            }
            _ => None,
        };
        if let Some(message) = found {
            out.push(Diagnostic {
                rule: Rule::AmbientNondet,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                snippet: snippet(t.line),
                help: "ambient inputs may feed fc-obs timing sinks or explicit config \
                       (FocusConfig), never a data path; thread the value in from the \
                       caller, or allowlist the site in xtask/allow.toml stating why \
                       it cannot influence output bytes"
                    .to_string(),
            });
        }
    }
}

/// The `A::B::` path immediately preceding token `i`, innermost-first
/// reversed to source order. `None` when `i` is not path-qualified.
fn path_before(tokens: &[Token], i: usize) -> Option<Vec<String>> {
    let mut segs = Vec::new();
    let mut j = i;
    while j >= 3
        && tokens[j - 1].is_punct(':')
        && tokens[j - 2].is_punct(':')
        && tokens[j - 3].kind == TokenKind::Ident
    {
        segs.push(tokens[j - 3].text.clone());
        j -= 3;
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(segs)
}

/// FC010 — `unsafe` without an adjacent `// SAFETY:` comment.
///
/// The comment must appear on the `unsafe` token's line or one of the three
/// lines above it (raw source lines, because plain comments do not survive
/// the lexer). The workspace has no `unsafe` today; this is the guard rail
/// the upcoming SIMD alignment kernel lands behind.
fn unsafe_hygiene(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    lines: &[&str],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || !t.is_ident("unsafe") {
            continue;
        }
        let documented = (t.line.saturating_sub(4)..t.line)
            .filter_map(|idx| lines.get(idx))
            .any(|l| l.contains("SAFETY:"));
        if !documented {
            out.push(Diagnostic {
                rule: Rule::UnsafeHygiene,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                snippet: snippet(t.line),
                help: "state the invariant that makes this sound in a `// SAFETY:` \
                       comment on the line above (what is guaranteed, and by whom)"
                    .to_string(),
            });
        }
    }
}

/// FC011 — unbounded whole-input reads in non-test library code.
///
/// `fs::read(..)` / `fs::read_to_string(..)` (resolved through the import
/// map, so a user module named `fs` never trips it) allocate a buffer sized
/// by the file; `.read_to_end(..)` / `.read_to_string(..)` do the same for
/// any `Read`. On a data path that defeats every memory budget: one
/// oversized input and the slurp OOMs before admission control can say no.
/// A method-call slurp is waived when a `.take(..)` cap appears on the same
/// or the two preceding lines (the `Read::take`-bounded idiom); everything
/// else needs an allowlist entry stating what bounds the input — a
/// fixed-size record, a file the process itself wrote, a kernel pseudo-file.
fn unbounded_read(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    file_items: &FileItems,
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    // A `.take(cap)` on the finding's line or the two above it bounds the
    // reader explicitly; the slurp then reads at most `cap` bytes.
    let take_nearby = |line: usize| {
        tokens.iter().enumerate().any(|(k, t)| {
            t.is_ident("take")
                && t.line + 2 >= line
                && t.line <= line
                && tokens.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        })
    };
    for (i, t) in tokens.iter().enumerate() {
        if excluded[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let called = tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if !called {
            continue;
        }
        let prev_is_dot = i > 0 && tokens[i - 1].is_punct('.');
        let found: Option<String> = match t.text.as_str() {
            // `fs::read(..)` / `std::fs::read_to_string(..)` — only when the
            // path actually resolves to `std::fs`.
            "read" | "read_to_string" if !prev_is_dot => {
                let canonical =
                    path_before(tokens, i).map(|segs| items::canonicalize(&segs, file_items));
                (canonical.as_deref() == Some("std::fs"))
                    .then(|| format!("`fs::{}()` slurps a whole file into memory", t.text))
            }
            // `reader.read_to_end(..)` / `reader.read_to_string(..)`.
            "read_to_end" | "read_to_string" if prev_is_dot => (!take_nearby(t.line))
                .then(|| format!("`.{}()` slurps an unbounded stream", t.text)),
            _ => None,
        };
        if let Some(message) = found {
            out.push(Diagnostic {
                rule: Rule::UnboundedRead,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
                snippet: snippet(t.line),
                help: "stream instead: parse incrementally from a BufReader, cap the \
                       reader with `Read::take(limit)` on or just above this line, or \
                       stage through the paged store; if the input is provably small \
                       (fixed-size record, file this process wrote, kernel pseudo-file), \
                       allowlist it in xtask/allow.toml stating that bound"
                    .to_string(),
            });
        }
    }
}

/// Everything about one `pub fn` signature the rules need.
struct PubFn {
    name: String,
    line: usize,
    col: usize,
    /// Tokens between the signature's outer parentheses.
    params: Vec<Token>,
    /// Tokens after `->` up to the body/terminator.
    ret: Vec<Token>,
    /// Doc-comment lines immediately preceding the item.
    docs: Vec<String>,
}

/// FC002 + FC004 — rules over public function signatures.
fn pub_fn_rules(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[bool],
    snippet: &dyn Fn(usize) -> Option<String>,
    out: &mut Vec<Diagnostic>,
) {
    for f in collect_pub_fns(tokens, excluded) {
        let mut sig = f.params.clone();
        sig.extend(f.ret.iter().cloned());
        if let Some(line) = find_result_string(&sig) {
            out.push(Diagnostic {
                rule: Rule::StringError,
                path: rel_path.to_string(),
                line,
                col: 0,
                message: format!(
                    "`Result<_, String>` in the public signature of `{}`",
                    f.name
                ),
                snippet: snippet(f.line),
                help: "use a typed error enum so callers can match on the failure mode".to_string(),
            });
        }
        if let Some(ty) = mutates_guarded_state(&f.params) {
            let returns_result = f.ret.iter().any(|t| t.is_ident("Result"));
            let has_invariants_doc = f.docs.iter().any(|d| d.trim().starts_with("# Invariants"));
            if !returns_result && !has_invariants_doc {
                out.push(Diagnostic {
                    rule: Rule::InvariantDoc,
                    path: rel_path.to_string(),
                    line: f.line,
                    col: f.col,
                    message: format!(
                        "pub fn `{}` mutates `{ty}` but neither returns a typed \
                         `Result` nor documents a `# Invariants` section",
                        f.name
                    ),
                    snippet: snippet(f.line),
                    help: "either return a typed error for violated preconditions, or \
                           add a `# Invariants` doc section stating what the mutation \
                           preserves"
                        .to_string(),
                });
            }
        }
    }
}

/// Walks the token stream collecting truly-public (`pub`, not `pub(crate)`)
/// functions outside test spans, with their docs, params, and return type.
fn collect_pub_fns(tokens: &[Token], excluded: &[bool]) -> Vec<PubFn> {
    let mut out = Vec::new();
    let mut docs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::DocComment {
            docs.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct('#') && tokens.get(i + 1).map(|n| n.is_punct('[')).unwrap_or(false) {
            // Attributes between docs and the item keep the docs alive.
            let (end, _) = scan_attribute(tokens, i + 1);
            i = end;
            continue;
        }
        if excluded[i] || !t.is_ident("pub") {
            if !(t.is_ident("pub") && excluded[i]) && t.kind != TokenKind::DocComment {
                docs.clear();
            }
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` / `pub(in ...)` are not public API.
        if tokens.get(j).map(|n| n.is_punct('(')).unwrap_or(false) {
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            docs.clear();
            i = j;
            continue;
        }
        // Skip qualifiers: `pub const fn`, `pub async unsafe fn`, ...
        while tokens
            .get(j)
            .map(|n| matches!(n.text.as_str(), "const" | "async" | "unsafe" | "extern"))
            .unwrap_or(false)
            || tokens
                .get(j)
                .map(|n| n.kind == TokenKind::Literal)
                .unwrap_or(false)
        {
            j += 1;
        }
        if !tokens.get(j).map(|n| n.is_ident("fn")).unwrap_or(false) {
            docs.clear();
            i = j.max(i + 1);
            continue;
        }
        let Some(name_tok) = tokens.get(j + 1) else {
            break;
        };
        if let Some(f) = parse_signature(tokens, j + 1) {
            out.push(PubFn {
                name: name_tok.text.clone(),
                line: name_tok.line,
                col: name_tok.col,
                params: f.0,
                ret: f.1,
                docs: std::mem::take(&mut docs),
            });
        }
        docs.clear();
        i = j + 1;
    }
    out
}

/// From the fn-name token index, splits the signature into parameter tokens
/// (inside the outer parens) and return tokens (after `->`, before the body
/// `{` or `;`).
fn parse_signature(tokens: &[Token], name_idx: usize) -> Option<(Vec<Token>, Vec<Token>)> {
    let mut i = name_idx + 1;
    // Skip generics on the name: `fn foo<'a, T: Bound>(...)`.
    if tokens.get(i).map(|t| t.is_punct('<')).unwrap_or(false) {
        let mut depth = 0isize;
        while i < tokens.len() {
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if tokens[i].is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    if !tokens.get(i).map(|t| t.is_punct('(')).unwrap_or(false) {
        return None;
    }
    let mut depth = 0usize;
    let mut params = Vec::new();
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
            if depth == 1 {
                i += 1;
                continue;
            }
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        }
        params.push(tokens[i].clone());
        i += 1;
    }
    // Return type: `-> ... {` or `-> ... ;` or `-> ... where`.
    let mut ret = Vec::new();
    if tokens.get(i).map(|t| t.is_punct('-')).unwrap_or(false)
        && tokens.get(i + 1).map(|t| t.is_punct('>')).unwrap_or(false)
    {
        i += 2;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            ret.push(t.clone());
            i += 1;
        }
    }
    Some((params, ret))
}

/// Finds `Result<_, String>` (or `..::Result<_, String>`) in signature
/// tokens; returns the line of the offending `Result` if present.
fn find_result_string(sig: &[Token]) -> Option<usize> {
    for (i, t) in sig.iter().enumerate() {
        if !t.is_ident("Result") || !sig.get(i + 1).map(|n| n.is_punct('<')).unwrap_or(false) {
            continue;
        }
        // Walk the generic arguments, splitting at depth-1 commas.
        let mut depth = 0isize;
        let mut args: Vec<Vec<&Token>> = vec![Vec::new()];
        let mut j = i + 1;
        while j < sig.len() {
            let u = &sig[j];
            if u.is_punct('<') {
                depth += 1;
                if depth == 1 {
                    j += 1;
                    continue;
                }
            } else if u.is_punct('>') && !(j > 0 && sig[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if u.is_punct(',') && depth == 1 {
                args.push(Vec::new());
                j += 1;
                continue;
            }
            if let Some(last) = args.last_mut() {
                last.push(u);
            }
            j += 1;
        }
        if args.len() >= 2 {
            let err = &args[args.len() - 1];
            let is_string = matches!(
                err.as_slice(),
                [t] if t.is_ident("String")
            ) || err.len() >= 3
                && err[err.len() - 1].is_ident("String")
                && err[err.len() - 2].is_punct(':')
                && err[err.len() - 3].is_punct(':');
            if is_string {
                return Some(t.line);
            }
        }
    }
    None
}

/// Does the parameter list mutate guarded assembly state? Returns the name
/// of the first guarded type found behind a `&mut`.
fn mutates_guarded_state(params: &[Token]) -> Option<String> {
    // Split params at top-level commas; inspect each param independently.
    let mut depth = 0isize;
    let mut start = 0usize;
    let mut spans = Vec::new();
    for (i, t) in params.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
            ">" if t.kind == TokenKind::Punct && !(i > 0 && params[i - 1].is_punct('-')) => {
                depth -= 1
            }
            "," if t.kind == TokenKind::Punct && depth == 0 => {
                spans.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < params.len() {
        spans.push(&params[start..]);
    }
    for span in spans {
        // Find `& [lifetime]? mut` within this param.
        let mut k = 0usize;
        let mut is_mut_ref = false;
        while k < span.len() {
            if span[k].is_punct('&') {
                let mut m = k + 1;
                if span
                    .get(m)
                    .map(|t| t.kind == TokenKind::Lifetime)
                    .unwrap_or(false)
                {
                    m += 1;
                }
                if span.get(m).map(|t| t.is_ident("mut")).unwrap_or(false) {
                    is_mut_ref = true;
                    break;
                }
            }
            k += 1;
        }
        if !is_mut_ref {
            continue;
        }
        if let Some(ty) = span.iter().find_map(|t| {
            MUTATION_GUARDED_TYPES
                .iter()
                .find(|g| t.is_ident(g))
                .map(|g| g.to_string())
        }) {
            return Some(ty);
        }
        // `parts: &mut [u32]` / `&mut Vec<u32>` — a partition vector when the
        // parameter name says so.
        let param_name = span.first().filter(|t| t.kind == TokenKind::Ident);
        let named_parts = param_name.map(|t| t.text.contains("part")).unwrap_or(false);
        let is_u32_seq = span.iter().any(|t| t.is_ident("u32"))
            && span.iter().any(|t| t.is_punct('[') || t.is_ident("Vec"));
        if named_parts && is_u32_seq {
            return Some("partition vector".to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<(&'static str, usize)> {
        analyze_file("lib.rs", src)
            .into_iter()
            .map(|d| (d.rule.code(), d.line))
            .collect()
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let src = "pub fn f(v: Vec<u32>) -> u32 {\n    v.first().copied().unwrap()\n}\n";
        assert_eq!(rules_hit(src), vec![("FC001", 2)]);
    }

    #[test]
    fn flags_every_panic_macro() {
        let src = "fn a() { panic!(\"x\") }\nfn b() { unreachable!() }\nfn c() { todo!() }\nfn d() { unimplemented!() }\n";
        let hits = rules_hit(src);
        assert_eq!(hits.len(), 4, "{hits:?}");
    }

    #[test]
    fn ignores_unwrap_or_family() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0).max(v.unwrap_or_default()) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn ignores_test_modules_and_test_fns() {
        let src = r#"
fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}

#[test]
fn top_level_test() { None::<u32>.unwrap(); }
"#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn cfg_any_test_is_test_code() {
        let src =
            "#[cfg(any(test, feature = \"slow\"))]\nmod helpers { pub fn h() { panic!() } }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let src = "#[cfg(not(test))]\nmod real { pub fn r() { panic!() } }\n";
        assert_eq!(rules_hit(src), vec![("FC001", 2)]);
    }

    #[test]
    fn code_after_test_module_is_still_linted() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n\npub fn later() { panic!() }\n";
        assert_eq!(rules_hit(src), vec![("FC001", 4)]);
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = "// v.unwrap()\nfn f() -> &'static str { \"panic!()\" }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn flags_result_string_in_pub_signature() {
        let src = "pub fn parse(s: &str) -> Result<u32, String> { s.parse().map_err(|e| format!(\"{e}\")) }\n";
        assert_eq!(rules_hit(src), vec![("FC002", 1)]);
    }

    #[test]
    fn nested_ok_type_does_not_confuse_fc002() {
        let src = "pub fn f() -> Result<Vec<String>, std::io::Error> { Ok(Vec::new()) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn private_and_crate_fns_escape_fc002() {
        let src = "fn a() -> Result<u32, String> { Ok(1) }\npub(crate) fn b() -> Result<u32, String> { Ok(2) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn qualified_string_error_is_flagged() {
        let src = "pub fn f() -> Result<(), std::string::String> { Ok(()) }\n";
        assert_eq!(rules_hit(src), vec![("FC002", 1)]);
    }

    #[test]
    fn mutator_without_docs_or_result_is_flagged() {
        let src = "pub fn remove_all(g: &mut DiGraph, nodes: &[u32]) -> usize { nodes.len() }\n";
        assert_eq!(rules_hit(src), vec![("FC004", 1)]);
    }

    #[test]
    fn mutator_with_invariants_doc_passes() {
        let src = "/// Removes nodes.\n///\n/// # Invariants\n/// Keeps edge weights conserved.\npub fn remove_all(g: &mut DiGraph) -> usize { 0 }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn mutator_returning_result_passes() {
        let src = "pub fn remove_all(g: &mut DiGraph) -> Result<usize, DistError> { Ok(0) }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn partition_vector_param_is_guarded() {
        let src = "pub fn rebalance(parts: &mut [u32], k: usize) {}\n";
        assert_eq!(rules_hit(src), vec![("FC004", 1)]);
    }

    #[test]
    fn shared_ref_is_not_a_mutation() {
        let src = "pub fn inspect(g: &DiGraph, parts: &[u32]) -> usize { parts.len() }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn attributes_between_docs_and_fn_keep_docs() {
        let src = "/// # Invariants\n/// ok\n#[inline]\npub fn m(g: &mut DiGraph) {}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn flags_print_macros_in_library_code() {
        let src = "pub fn f() { println!(\"x\"); eprintln!(\"y\"); }\nfn g() { dbg!(1); print!(\"a\"); eprint!(\"b\"); }\n";
        let hits = rules_hit(src);
        assert_eq!(
            hits.iter().filter(|(c, _)| *c == "FC005").count(),
            5,
            "{hits:?}"
        );
    }

    #[test]
    fn prints_in_tests_and_writeln_escape_fc005() {
        let src = r#"
use std::fmt::Write;
pub fn render() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "structured output is fine");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!("debugging a test is fine"); }
}
"#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn flags_unbounded_channels_and_injector() {
        let src = "\
fn a() { let (tx, rx) = crossbeam::channel::unbounded(); }
fn b() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }
fn c() { let inj: Injector<u32> = Injector::new(); }
fn d() { let (tx, rx) = std::sync::mpsc::sync_channel(16); }
";
        let hits = rules_hit(src);
        assert_eq!(
            hits.iter().filter(|(c, _)| *c == "FC006").count(),
            2,
            "{hits:?}"
        );
        // Turbofish on `channel::<u32>` hides the call parens from the
        // simple pattern; the plain form and `unbounded` are caught, and
        // `sync_channel` is never flagged.
        assert!(hits.contains(&("FC006", 1)), "{hits:?}");
        assert!(hits.contains(&("FC006", 3)), "{hits:?}");
    }

    #[test]
    fn vecdeque_needs_a_documented_bound() {
        let bare = "fn f() { let q = std::collections::VecDeque::from([1u32]); }\n";
        assert_eq!(rules_hit(bare), vec![("FC006", 1)]);
        let documented = "\
fn f() {
    // Bounded by the node count: each node is pushed at most once.
    let q = std::collections::VecDeque::from([1u32]);
}
";
        assert!(rules_hit(documented).is_empty());
        let same_line = "fn f() { let q: std::collections::VecDeque<u32> = std::collections::VecDeque::new(); /* bounded by admit() */ }\n";
        assert!(rules_hit(same_line).is_empty());
    }

    #[test]
    fn queues_in_tests_escape_fc006() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let q = std::collections::VecDeque::from([1]); }\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn module_collision_prefix_only() {
        let stems = vec![
            ("error".to_string(), "src/error.rs".to_string()),
            ("errors".to_string(), "src/errors.rs".to_string()),
            ("fasta".to_string(), "src/fasta.rs".to_string()),
            ("fastq".to_string(), "src/fastq.rs".to_string()),
        ];
        let diags = module_collisions("crates/dist", &stems);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("error.rs"));
        assert!(diags[0].message.contains("errors.rs"));
    }

    #[test]
    fn fc007_flags_hashmap_iteration_through_imports() {
        let src = "\
use std::collections::HashMap;
fn f(votes: &HashMap<u64, u32>) -> u32 {
    let mut best = 0;
    for (_, v) in votes.iter() {
        best = best.max(*v);
    }
    best
}
";
        assert_eq!(rules_hit(src), vec![("FC007", 4)]);
    }

    #[test]
    fn fc007_adjacent_sort_waives_the_finding() {
        let src = "\
use std::collections::HashMap;
fn f(votes: &HashMap<u64, u32>) -> Vec<(u64, u32)> {
    let mut flat: Vec<(u64, u32)> = votes.iter().map(|(&k, &v)| (k, v)).collect();
    flat.sort_unstable();
    flat
}
";
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn fc007_btree_receivers_are_fine() {
        let src = "\
use std::collections::BTreeMap;
fn f(m: &BTreeMap<u64, u32>) -> u32 {
    let mut s = 0;
    for (_, v) in m.iter() {
        s += *v;
    }
    for v in m.values() {
        s += *v;
    }
    s
}
";
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn fc007_direct_for_loop_and_fields() {
        let src = "\
use std::collections::{HashMap, HashSet};
struct S { seen: HashSet<u32> }
impl S {
    fn g(&self) -> u32 {
        let mut n = 0;
        for v in &self.seen {
            n ^= *v;
        }
        n
    }
}
fn h() {
    let mut votes: HashMap<u32, u32> = HashMap::new();
    votes.insert(1, 2);
    for (k, v) in votes {
        let _ = k + v;
    }
}
";
        let hits = rules_hit(src);
        assert_eq!(hits, vec![("FC007", 6), ("FC007", 15)], "{hits:?}");
    }

    #[test]
    fn fc007_collect_turbofish_in_for_header() {
        let src = "\
use std::collections::HashSet;
fn f(recorded: Vec<u32>) {
    for v in recorded.into_iter().collect::<HashSet<_>>() {
        let _ = v;
    }
}
";
        let hits = rules_hit(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "FC007");
    }

    #[test]
    fn fc007_user_hashmap_is_not_flagged() {
        let src = "\
use crate::mini::HashMap;
fn f(m: &HashMap) {
    for v in m.iter() {
        let _ = v;
    }
}
";
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn fc008_flags_clock_env_and_core_count() {
        let src = "\
use std::time::{Instant, SystemTime};
fn f() {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let home = std::env::var(\"HOME\");
    let cores = std::thread::available_parallelism();
    let _ = (t0, wall, home, cores);
}
";
        let hits = rules_hit(src);
        let fc8: Vec<_> = hits.iter().filter(|(c, _)| *c == "FC008").collect();
        assert_eq!(fc8.len(), 4, "{hits:?}");
    }

    #[test]
    fn fc008_elapsed_and_user_now_are_fine() {
        let src = "\
struct Clock;
impl Clock {
    fn now(&self) -> u64 { 0 }
}
fn f(c: &Clock, t0: std::time::Instant) -> u64 {
    let _ = t0.elapsed();
    c.now()
}
fn g() -> u64 {
    let clock = Clock;
    clock.now()
}
";
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn fc008_is_test_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
    }
}
";
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn fc011_flags_fs_slurps_and_stream_slurps() {
        let src = "\
use std::fs;
use std::io::Read;
fn a(p: &str) -> Vec<u8> { fs::read(p).unwrap_or_default() }
fn b(p: &str) -> String { std::fs::read_to_string(p).unwrap_or_default() }
fn c(mut r: impl Read) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = r.read_to_end(&mut buf);
    buf
}
";
        let hits = rules_hit(src);
        let fc11: Vec<_> = hits.iter().filter(|(c, _)| *c == "FC011").collect();
        assert_eq!(fc11.len(), 3, "{hits:?}");
        assert!(hits.contains(&("FC011", 3)), "{hits:?}");
        assert!(hits.contains(&("FC011", 4)), "{hits:?}");
        assert!(hits.contains(&("FC011", 7)), "{hits:?}");
    }

    #[test]
    fn fc011_take_cap_and_user_fs_escape() {
        let src = "\
use std::io::Read;
mod fs { pub fn read(_: &str) -> Vec<u8> { Vec::new() } }
fn bounded(r: impl Read, cap: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    // The cap bounds the slurp explicitly.
    let _ = r.take(cap).read_to_end(&mut buf);
    buf
}
fn user_fs(p: &str) -> Vec<u8> { fs::read(p) }
fn chunked(mut r: impl Read) -> usize {
    let mut chunk = [0u8; 4096];
    r.read(&mut chunk).unwrap_or(0)
}
";
        let hits = rules_hit(src);
        assert!(
            !hits.iter().any(|(c, _)| *c == "FC011"),
            "bounded/user-typed reads must not fire FC011: {hits:?}"
        );
    }

    #[test]
    fn fc011_is_test_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::fs::read(\"fixture\"); }
}
";
        assert!(rules_hit(src).is_empty(), "{:?}", rules_hit(src));
    }

    #[test]
    fn fc010_unsafe_requires_safety_comment() {
        let bare = "\
pub fn read_wide(p: *const u8) -> u8 {
    unsafe { *p }
}
";
        assert_eq!(rules_hit(bare), vec![("FC010", 2)]);
        let documented = "\
pub fn read_wide(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points into a live, aligned buffer.
    unsafe { *p }
}
";
        assert!(rules_hit(documented).is_empty());
        let unsafe_fn = "\
// SAFETY: contract documented on the trait.
pub unsafe fn raw_len(p: *const u8) -> usize { 0 }
";
        assert!(rules_hit(unsafe_fn).is_empty());
    }
}
