//! Path-aware item tables: the lightweight "name resolution" layer the
//! FC007–FC009 rules stand on.
//!
//! The token-level rules (FC001–FC006) ask questions a lexer can answer:
//! "is this ident `unwrap` followed by `(`?". The determinism rules need
//! one step more — "is the receiver of this `.iter()` a
//! `std::collections::HashMap`?" — which requires knowing what the local
//! name `HashMap` means in this file and what type the receiver was
//! declared with. This module builds exactly that, and nothing more:
//!
//! * an **import map** per file (`use std::collections::{HashMap, HashSet}`
//!   → `HashMap` ⇒ `std::collections::HashMap`, honouring `as` renames),
//! * a **binding table** per file: local names (let bindings, fn params,
//!   statics/consts) and struct fields whose declared or constructor-
//!   inferred type resolves to a canonical path we care about,
//! * a **crate-wide field table**, merged over the crate's files, so
//!   `self.votes` in one module resolves through a struct declared in
//!   another.
//!
//! This is deliberately not a type checker. Names are resolved flat, per
//! file (shadowing across scopes is ignored), and only the *head* of a type
//! is kept (`HashMap<(ReadId, i64), u32>` ⇒ `std::collections::HashMap`).
//! That is enough to be precise on this codebase's idioms; genuinely
//! ambiguous cases fail open (unresolved names are never flagged) and the
//! allowlist catches the rest.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Canonical paths the rules ask about. Matching is by full canonical path
/// so a user-defined `struct HashMap` imported from a local module never
/// trips the std-collection rules.
pub mod paths {
    pub const HASH_MAP: &str = "std::collections::HashMap";
    pub const HASH_SET: &str = "std::collections::HashSet";
    pub const BTREE_MAP: &str = "std::collections::BTreeMap";
    pub const BTREE_SET: &str = "std::collections::BTreeSet";
    pub const MUTEX: &str = "std::sync::Mutex";
    pub const RWLOCK: &str = "std::sync::RwLock";
    pub const INSTANT: &str = "std::time::Instant";
    pub const SYSTEM_TIME: &str = "std::time::SystemTime";
}

/// Well-known roots: a path starting with one of these is already
/// canonical. Everything else resolves through the file's import map.
const ROOT_SEGMENTS: [&str; 4] = ["std", "core", "alloc", "crate"];

/// `std`-aliased roots normalised to `std` so `core::time::Instant` and
/// `std::time::Instant` compare equal.
fn normalize_root(path: String) -> String {
    for alias in ["core::", "alloc::"] {
        if let Some(rest) = path.strip_prefix(alias) {
            return format!("std::{rest}");
        }
    }
    path
}

/// The per-file item table.
#[derive(Debug, Default, Clone)]
pub struct FileItems {
    /// Local name → canonical path, from `use` declarations.
    pub imports: BTreeMap<String, String>,
    /// Binding name (let / param / static / const) → canonical type head.
    pub bindings: BTreeMap<String, String>,
    /// Struct field name → canonical type head (fields of every struct
    /// declared in this file, flattened).
    pub fields: BTreeMap<String, String>,
}

/// Crate-wide view: the merged field tables of every file, so method bodies
/// can resolve `self.field` declared in a sibling module.
#[derive(Debug, Default, Clone)]
pub struct CrateItems {
    pub fields: BTreeMap<String, String>,
}

impl CrateItems {
    /// Merges one file's fields into the crate table. First declaration
    /// wins on collisions — fields sharing a name across structs in one
    /// crate overwhelmingly share a type in practice, and a wrong merge
    /// only ever *adds* a finding that the allowlist can veto.
    pub fn absorb(&mut self, file: &FileItems) {
        for (name, ty) in &file.fields {
            self.fields
                .entry(name.clone())
                .or_insert_with(|| ty.clone());
        }
    }
}

impl FileItems {
    /// Resolves a locally-spelled type or value name to its canonical path:
    /// through the import map, or unchanged if it is already rooted.
    pub fn resolve(&self, name: &str) -> Option<String> {
        if let Some(canonical) = self.imports.get(name) {
            return Some(canonical.clone());
        }
        None
    }

    /// The canonical type head of a named binding or (crate-wide) field,
    /// preferring the tighter binding table.
    pub fn type_of<'a>(&'a self, krate: &'a CrateItems, name: &str) -> Option<&'a str> {
        self.bindings
            .get(name)
            .or_else(|| self.fields.get(name))
            .or_else(|| krate.fields.get(name))
            .map(String::as_str)
    }
}

/// Builds the item table for one lexed file. `tokens` must be the full
/// stream (test spans included — imports and struct declarations inside
/// `#[cfg(test)]` modules are harmless to record, and the rules apply
/// their own test exclusion at the *use* site).
pub fn collect(tokens: &[Token]) -> FileItems {
    let mut items = FileItems::default();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "use" => i = scan_use(tokens, i + 1, &mut items),
            "struct" => i = scan_struct(tokens, i + 1, &mut items),
            "let" => i = scan_let(tokens, i + 1, &mut items),
            "static" | "const" => i = scan_static(tokens, i + 1, &mut items),
            "fn" => i = scan_fn_params(tokens, i + 1, &mut items),
            _ => i += 1,
        }
    }
    items
}

/// Reads a `::`-separated path starting at `i`; returns the segments and the
/// index just past the path.
fn scan_path(tokens: &[Token], mut i: usize) -> (Vec<String>, usize) {
    let mut segs = Vec::new();
    loop {
        match tokens.get(i) {
            Some(t) if t.kind == TokenKind::Ident => {
                segs.push(t.text.clone());
                i += 1;
            }
            _ => break,
        }
        if tokens.get(i).map(|t| t.is_punct(':')).unwrap_or(false)
            && tokens.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
        {
            i += 2;
        } else {
            break;
        }
    }
    (segs, i)
}

/// `use a::b::{C, D as E, F};` — records every imported leaf. Glob imports
/// and nested groups deeper than one level are skipped (fail open).
fn scan_use(tokens: &[Token], i: usize, items: &mut FileItems) -> usize {
    let (prefix, mut j) = scan_path(tokens, i);
    if prefix.is_empty() {
        return i + 1;
    }
    let rooted = |full: &[String]| -> Option<String> {
        // `crate::...` paths stay crate-local; the rules only need std.
        if !ROOT_SEGMENTS.contains(&full[0].as_str()) || full[0] == "crate" {
            return None;
        }
        Some(normalize_root(full.join("::")))
    };
    // Single import, possibly renamed: `use std::time::Instant [as T];`
    if tokens.get(j).map(|t| t.is_ident("as")).unwrap_or(false) {
        if let Some(alias) = tokens.get(j + 1).filter(|t| t.kind == TokenKind::Ident) {
            if let Some(canonical) = rooted(&prefix) {
                items.imports.insert(alias.text.clone(), canonical);
            }
            return j + 2;
        }
    }
    if tokens.get(j).map(|t| t.is_punct(';')).unwrap_or(false) {
        if let Some(leaf) = prefix.last().cloned() {
            if let Some(canonical) = rooted(&prefix) {
                items.imports.insert(leaf, canonical);
            }
        }
        return j + 1;
    }
    // Group import: `use std::sync::{Mutex, RwLock as L, atomic::AtomicU64};`
    if tokens.get(j).map(|t| t.is_punct('{')).unwrap_or(false) {
        j += 1;
        let mut depth = 1usize;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('{') {
                depth += 1;
                j += 1;
                continue;
            }
            if tokens[j].is_punct('}') {
                depth -= 1;
                j += 1;
                continue;
            }
            if depth == 1 && tokens[j].kind == TokenKind::Ident {
                let (inner, next) = scan_path(tokens, j);
                let mut name = inner.last().cloned().unwrap_or_default();
                let mut after = next;
                if tokens.get(after).map(|t| t.is_ident("as")).unwrap_or(false) {
                    if let Some(alias) =
                        tokens.get(after + 1).filter(|t| t.kind == TokenKind::Ident)
                    {
                        name = alias.text.clone();
                        after = after + 2;
                    }
                }
                let mut full = prefix.clone();
                // `self` imports the prefix itself: `use std::sync::{self}`.
                if !(inner.len() == 1 && inner[0] == "self") {
                    full.extend(inner.clone());
                }
                if !name.is_empty() && name != "self" || inner == ["self"] {
                    let leaf = if inner == ["self"] {
                        prefix.last().cloned().unwrap_or_default()
                    } else {
                        name
                    };
                    if ROOT_SEGMENTS.contains(&full[0].as_str()) && full[0] != "crate" {
                        items.imports.insert(leaf, normalize_root(full.join("::")));
                    }
                }
                j = after;
                continue;
            }
            j += 1;
        }
        return j;
    }
    j
}

/// `struct Name { field: Type, ... }` — records field → type head. Tuple
/// structs and unit structs have no named fields and are skipped.
fn scan_struct(tokens: &[Token], i: usize, items: &mut FileItems) -> usize {
    // Skip name and generics to the `{` or `;`.
    let mut j = i;
    let mut angle = 0isize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_punct('(')) {
            break;
        }
        j += 1;
    }
    if !tokens.get(j).map(|t| t.is_punct('{')).unwrap_or(false) {
        return j;
    }
    j += 1;
    let mut depth = 1usize;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('{') {
            depth += 1;
            j += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            j += 1;
            continue;
        }
        // A field is `ident :` at depth 1 (skipping `pub`/`pub(crate)`).
        if depth == 1
            && t.kind == TokenKind::Ident
            && !matches!(t.text.as_str(), "pub" | "crate" | "super" | "in")
            && tokens.get(j + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            && !tokens.get(j + 2).map(|n| n.is_punct(':')).unwrap_or(false)
        {
            let (head, next) = scan_type_head(tokens, j + 2, items);
            if let Some(ty) = head {
                items.fields.insert(t.text.clone(), ty);
            }
            j = next;
            continue;
        }
        j += 1;
    }
    j
}

/// `let [mut] name [: Type] [= expr];` — records the annotated type, or the
/// constructor-inferred one (`= HashMap::new()`, `= ...collect::<HashSet<_>>()`).
fn scan_let(tokens: &[Token], mut i: usize, items: &mut FileItems) -> usize {
    if tokens.get(i).map(|t| t.is_ident("mut")).unwrap_or(false) {
        i += 1;
    }
    let Some(name) = tokens.get(i).filter(|t| t.kind == TokenKind::Ident) else {
        return i; // destructuring patterns — out of scope
    };
    let name = name.text.clone();
    let mut j = i + 1;
    let mut recorded = false;
    if tokens.get(j).map(|t| t.is_punct(':')).unwrap_or(false)
        && !tokens.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false)
    {
        let (head, next) = scan_type_head(tokens, j + 1, items);
        if let Some(ty) = head {
            items.bindings.insert(name.clone(), ty);
            recorded = true;
        }
        j = next;
    }
    if recorded {
        return j;
    }
    // Constructor inference on the initializer expression.
    if tokens.get(j).map(|t| t.is_punct('=')).unwrap_or(false) {
        if let Some(ty) = infer_expr_type(tokens, j + 1, items) {
            items.bindings.insert(name, ty);
        }
    }
    j
}

/// `static NAME: Type = ...;` / `const NAME: Type = ...;`
fn scan_static(tokens: &[Token], mut i: usize, items: &mut FileItems) -> usize {
    if tokens.get(i).map(|t| t.is_ident("mut")).unwrap_or(false) {
        i += 1;
    }
    let Some(name) = tokens.get(i).filter(|t| t.kind == TokenKind::Ident) else {
        return i;
    };
    if !tokens.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false) {
        return i + 1; // `const fn`, associated consts without annotation, ...
    }
    let (head, next) = scan_type_head(tokens, i + 2, items);
    if let Some(ty) = head {
        items.bindings.insert(name.text.clone(), ty);
    }
    next
}

/// Records parameter types from a `fn` signature: `name: &mut Type`.
fn scan_fn_params(tokens: &[Token], i: usize, items: &mut FileItems) -> usize {
    // Find the opening paren (skipping the name and generics).
    let mut j = i;
    let mut angle = 0isize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && tokens[j - 1].is_punct('-')) {
            angle -= 1;
        } else if angle == 0 && t.is_punct('(') {
            break;
        } else if angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
            return j;
        }
        j += 1;
    }
    if j >= tokens.len() {
        return j;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
            j += 1;
            continue;
        }
        if t.is_punct(')') {
            depth -= 1;
            j += 1;
            if depth == 0 {
                break;
            }
            continue;
        }
        if depth == 1
            && t.kind == TokenKind::Ident
            && tokens.get(j + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            && !tokens.get(j + 2).map(|n| n.is_punct(':')).unwrap_or(false)
        {
            let (head, next) = scan_type_head(tokens, j + 2, items);
            if let Some(ty) = head {
                items.bindings.insert(t.text.clone(), ty);
            }
            j = next;
            continue;
        }
        j += 1;
    }
    j
}

/// Reads a type at `i` and returns its canonical head, skipping `&`,
/// lifetimes and `mut`. Returns the index where scanning stopped (just past
/// the head path; the caller resumes from there and tolerates re-scanning
/// generic arguments).
fn scan_type_head(tokens: &[Token], mut i: usize, items: &FileItems) -> (Option<String>, usize) {
    while let Some(t) = tokens.get(i) {
        if t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_ident("mut") {
            i += 1;
        } else {
            break;
        }
    }
    let (segs, next) = scan_path(tokens, i);
    if segs.is_empty() {
        return (None, i + 1);
    }
    (Some(canonicalize(&segs, items)), next)
}

/// Canonicalizes a spelled path: fully-rooted paths normalise directly,
/// single names and first segments resolve through the import map.
pub fn canonicalize(segs: &[String], items: &FileItems) -> String {
    if segs.len() > 1 && ROOT_SEGMENTS.contains(&segs[0].as_str()) {
        return normalize_root(segs.join("::"));
    }
    if let Some(canonical) = items.resolve(&segs[0]) {
        if segs.len() == 1 {
            return canonical;
        }
        return format!("{canonical}::{}", segs[1..].join("::"));
    }
    segs.join("::")
}

/// Infers the type head of an initializer expression: `Type::new(...)`,
/// `Type::with_capacity(...)`, `Type::from(...)`, `Type::default()`, or a
/// trailing `.collect::<Type<_>>()` turbofish anywhere in the expression.
fn infer_expr_type(tokens: &[Token], i: usize, items: &FileItems) -> Option<String> {
    // Scan the expression to its terminating `;` at depth 0.
    let mut j = i;
    let mut depth = 0isize;
    let mut end = tokens.len();
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            end = j;
            break;
        }
        j += 1;
    }
    let expr = &tokens[i..end.min(tokens.len())];
    // `Path::ctor(` at the start of the expression.
    let (segs, next) = scan_path_slice(expr, 0);
    if segs.len() >= 2
        && expr.get(next).map(|t| t.is_punct('(')).unwrap_or(false)
        && matches!(
            segs.last().map(String::as_str),
            Some("new" | "with_capacity" | "from" | "default")
        )
    {
        return Some(canonicalize(&segs[..segs.len() - 1], items));
    }
    // `.collect::<Type<..>>()` turbofish — take the *last* one in the
    // expression (the outermost collect).
    let mut found = None;
    for k in 0..expr.len() {
        if expr[k].is_ident("collect")
            && expr.get(k + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && expr.get(k + 2).map(|t| t.is_punct(':')).unwrap_or(false)
            && expr.get(k + 3).map(|t| t.is_punct('<')).unwrap_or(false)
        {
            let (segs, _) = scan_path_slice(expr, k + 4);
            if !segs.is_empty() {
                found = Some(canonicalize(&segs, items));
            }
        }
    }
    found
}

fn scan_path_slice(tokens: &[Token], mut i: usize) -> (Vec<String>, usize) {
    let mut segs = Vec::new();
    loop {
        match tokens.get(i) {
            Some(t) if t.kind == TokenKind::Ident => {
                segs.push(t.text.clone());
                i += 1;
            }
            _ => break,
        }
        if tokens.get(i).map(|t| t.is_punct(':')).unwrap_or(false)
            && tokens.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
        {
            i += 2;
        } else {
            break;
        }
    }
    (segs, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> FileItems {
        collect(&lex(src))
    }

    #[test]
    fn resolves_single_and_group_imports() {
        let items = items_of(
            "use std::collections::HashMap;\n\
             use std::collections::{HashSet, BTreeMap};\n\
             use std::sync::{Mutex, RwLock as Lock};\n",
        );
        assert_eq!(
            items.imports.get("HashMap").map(String::as_str),
            Some(paths::HASH_MAP)
        );
        assert_eq!(
            items.imports.get("HashSet").map(String::as_str),
            Some(paths::HASH_SET)
        );
        assert_eq!(
            items.imports.get("Lock").map(String::as_str),
            Some(paths::RWLOCK)
        );
        assert_eq!(
            items.imports.get("Mutex").map(String::as_str),
            Some(paths::MUTEX)
        );
        assert!(items.imports.get("RwLock").is_none(), "renamed away");
    }

    #[test]
    fn core_and_alloc_normalise_to_std() {
        let items = items_of("use core::time::Duration;\nuse alloc::collections::BTreeMap;\n");
        assert_eq!(
            items.imports.get("Duration").map(String::as_str),
            Some("std::time::Duration")
        );
        assert_eq!(
            items.imports.get("BTreeMap").map(String::as_str),
            Some("std::collections::BTreeMap")
        );
    }

    #[test]
    fn crate_local_imports_are_not_std() {
        let items = items_of("use crate::collections::HashMap;\nuse fc_seq::ReadStore;\n");
        assert!(items.imports.get("HashMap").is_none());
        assert!(items.imports.get("ReadStore").is_none());
    }

    #[test]
    fn struct_fields_resolve_through_imports() {
        let items = items_of(
            "use std::collections::HashMap;\n\
             use std::sync::Mutex;\n\
             pub struct S {\n    votes: HashMap<(u32, i64), u32>,\n    pub core: Mutex<Core>,\n}\n",
        );
        assert_eq!(
            items.fields.get("votes").map(String::as_str),
            Some(paths::HASH_MAP)
        );
        assert_eq!(
            items.fields.get("core").map(String::as_str),
            Some(paths::MUTEX)
        );
    }

    #[test]
    fn let_annotations_and_ctors_are_inferred() {
        let items = items_of(
            "use std::collections::{HashMap, HashSet};\n\
             fn f() {\n\
                 let mut votes: HashMap<u64, u32> = HashMap::new();\n\
                 let seen = HashSet::new();\n\
                 let uniq = recorded.into_iter().collect::<HashSet<_>>();\n\
                 let full = std::collections::HashMap::with_capacity(4);\n\
             }\n",
        );
        assert_eq!(
            items.bindings.get("votes").map(String::as_str),
            Some(paths::HASH_MAP)
        );
        assert_eq!(
            items.bindings.get("seen").map(String::as_str),
            Some(paths::HASH_SET)
        );
        assert_eq!(
            items.bindings.get("uniq").map(String::as_str),
            Some(paths::HASH_SET)
        );
        assert_eq!(
            items.bindings.get("full").map(String::as_str),
            Some(paths::HASH_MAP)
        );
    }

    #[test]
    fn fn_params_are_recorded() {
        let items = items_of(
            "use std::collections::HashMap;\n\
             fn layout(nodes: &[u32], containments: &HashMap<(u32, u32), ()>) {}\n",
        );
        assert_eq!(
            items.bindings.get("containments").map(String::as_str),
            Some(paths::HASH_MAP)
        );
        assert!(
            items.bindings.get("nodes").is_none(),
            "slice head is not a path"
        );
    }

    #[test]
    fn user_types_sharing_std_names_stay_unresolved() {
        let items = items_of(
            "use mycrate::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n",
        );
        // `mycrate::HashMap` is not std; the binding records the spelled
        // name, which matches no canonical path.
        assert_eq!(items.bindings.get("m").map(String::as_str), Some("HashMap"));
    }

    #[test]
    fn crate_table_merges_fields_across_files() {
        let a = items_of("use std::sync::Mutex;\nstruct S { core: Mutex<u8> }\n");
        let b = items_of("struct T { other: Vec<u8> }\n");
        let mut krate = CrateItems::default();
        krate.absorb(&a);
        krate.absorb(&b);
        assert_eq!(
            krate.fields.get("core").map(String::as_str),
            Some(paths::MUTEX)
        );
        assert_eq!(krate.fields.get("other").map(String::as_str), Some("Vec"));
    }

    #[test]
    fn statics_are_recorded() {
        let items = items_of("use std::sync::Mutex;\nstatic LOCK_A: Mutex<()> = Mutex::new(());\n");
        assert_eq!(
            items.bindings.get("LOCK_A").map(String::as_str),
            Some(paths::MUTEX)
        );
    }
}
