//! # xtask — workspace automation for the Focus assembler
//!
//! `cargo xtask analyze` is a Focus-specific static-analysis gate (DESIGN.md
//! §7): the paper's pipeline is a chain of invariant-carrying graph
//! transformations, and a silent `unwrap()` on a malformed record or an
//! unchecked partition index aborts a whole simulated rank. The analyzer
//! enforces, over the non-test library code of every `fc-*`/`focus-core`
//! crate:
//!
//! * **FC001 `no-panic`** — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!`; failures must travel as typed errors.
//! * **FC002 `no-string-error`** — no `Result<_, String>` in public
//!   signatures.
//! * **FC003 `no-module-collision`** — no near-colliding module filenames
//!   (`error.rs` vs `errors.rs`).
//! * **FC004 `invariant-doc`** — a `pub fn` mutating a `DiGraph`, partition
//!   vector, or hybrid/multilevel set must return a typed `Result` or carry
//!   a `# Invariants` doc section.
//! * **FC005 `no-print`** — no raw `println!`-family output in library
//!   code; diagnostics go through fc-obs.
//! * **FC006 `no-unbounded-queue`** — no unbounded channels or queues
//!   (`unbounded()`, `mpsc::channel`, `Injector::new`); `VecDeque` queues
//!   must document their capacity bound on or just above the construction
//!   site. Admission control is explicit or it does not exist.
//!
//! On top of the token rules sits a path-aware layer ([`items`]): a
//! lightweight use-declaration/item parser that resolves imported names to
//! canonical paths (`std::collections::HashMap`, `std::sync::Mutex`) and
//! types let-bindings, params, statics, and struct fields crate-wide. It
//! powers the determinism audit (DESIGN.md §13):
//!
//! * **FC007 `nondet-iteration`** — no iteration over `HashMap`/`HashSet`
//!   in non-test library code unless canonicalized by an adjacent sort;
//!   hash order on a data path breaks the bit-identical-contigs contract.
//! * **FC008 `ambient-nondet`** — `Instant::now`/`SystemTime::now`/
//!   `std::env::var`/`available_parallelism` are banned outside the fc-obs
//!   timing sink and allowlisted config-layer sites.
//! * **FC009 `lock-order`** — every function's Mutex/RwLock acquisition
//!   sequence (guard-liveness aware, helper-propagating) merges into one
//!   workspace lock-order graph that must stay acyclic ([`lockorder`]).
//! * **FC010 `unsafe-hygiene`** — every `unsafe` needs an adjacent
//!   `// SAFETY:` comment.
//! * **FC011 `no-unbounded-read`** — no unbounded whole-input reads
//!   (`fs::read`, `fs::read_to_string`, `.read_to_end`, `.read_to_string`)
//!   in library code: a slurp sized by the input defeats every memory
//!   budget (DESIGN.md §16). Stream through bounded buffers, cap with
//!   `Read::take`, or allowlist a provably small input with a reason.
//!
//! Justified exceptions live in `xtask/allow.toml`, each with a mandatory
//! `reason`; entries that no longer match anything are themselves errors,
//! so suppressions cannot rot. The binary exits nonzero on any unsuppressed
//! finding so CI can gate on it, and `--json` emits the same findings
//! machine-readably ([`json`]).
//!
//! Everything is built on a small hand-rolled lexer ([`lexer`]) because this
//! build environment cannot fetch `syn`; the lexer understands exactly as
//! much Rust as the rules need (comments, strings, lifetimes, doc comments).

pub mod allow;
pub mod diag;
pub mod items;
pub mod json;
pub mod lexer;
pub mod lockorder;
pub mod rules;
pub mod workspace;

use diag::Diagnostic;
use std::fs;
use std::path::Path;

/// Outcome of an analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Findings not suppressed by the allowlist.
    pub violations: Vec<Diagnostic>,
    /// Findings suppressed by the allowlist (reported in verbose mode).
    pub suppressed: Vec<(Diagnostic, String)>,
    /// Allowlist entries that matched nothing (stale suppressions).
    pub unused_allows: Vec<allow::AllowEntry>,
    /// Files analyzed.
    pub files: usize,
}

/// Runs every rule over the workspace rooted at `root`, applying the
/// allowlist at `allow_path` when it exists.
pub fn analyze_workspace(root: &Path, allow_path: &Path) -> Result<Analysis, String> {
    let allows = if allow_path.exists() {
        let text =
            fs::read_to_string(allow_path).map_err(|e| format!("{}: {e}", allow_path.display()))?;
        allow::parse(&text)?
    } else {
        Vec::new()
    };

    let crates = workspace::lint_crates(root).map_err(|e| format!("scanning crates: {e}"))?;
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut files = 0usize;
    let mut locks = lockorder::Collector::new();
    for c in &crates {
        raw.extend(rules::module_collisions(
            &c.rel_dir,
            &workspace::module_stems(c),
        ));
        // Pass 1: lex every file and build the crate-wide item table, so a
        // field declared in one module resolves in a sibling's method body.
        let mut lexed = Vec::with_capacity(c.sources.len());
        let mut krate = items::CrateItems::default();
        for rel in &c.sources {
            let text = fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
            let tokens = lexer::lex(&text);
            let file_items = items::collect(&tokens);
            krate.absorb(&file_items);
            lexed.push((rel, text, tokens, file_items));
        }
        locks.add_crate(&c.name, &krate);
        // Pass 2: the per-file rules, plus feeding the lock-order audit.
        for (rel, text, tokens, file_items) in &lexed {
            raw.extend(rules::analyze_tokens(
                &c.name, rel, text, tokens, file_items, &krate,
            ));
            locks.add_file(&c.name, rel, tokens, file_items);
            files += 1;
        }
    }
    raw.extend(locks.finish());

    // Byte-stable output: one canonical order regardless of platform or
    // directory-walk order.
    raw.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule.code()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule.code(),
        ))
    });

    let mut used = vec![false; allows.len()];
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for d in raw {
        match allows.iter().position(|a| a.matches(&d)) {
            Some(i) => {
                used[i] = true;
                suppressed.push((d, allows[i].reason.clone()));
            }
            None => violations.push(d),
        }
    }
    let unused_allows = allows
        .into_iter()
        .zip(used)
        .filter_map(|(a, u)| (!u).then_some(a))
        .collect();
    Ok(Analysis {
        violations,
        suppressed,
        unused_allows,
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn write(root: &Path, rel: &str, content: &str) {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture");
    }

    /// Builds a miniature workspace with one lintable crate.
    fn fixture_workspace(tag: &str, lib_rs: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("xtask-selftest-{tag}"));
        let _ = fs::remove_dir_all(&root);
        write(
            &root,
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/*\"]\n",
        );
        write(
            &root,
            "crates/demo/Cargo.toml",
            "[package]\nname = \"fc-demo\"\nversion = \"0.0.0\"\n",
        );
        write(&root, "crates/demo/src/lib.rs", lib_rs);
        root
    }

    /// The acceptance-criteria self-test: a deliberately introduced
    /// `unwrap()` in a library crate must produce a violation (and therefore
    /// a nonzero exit in `main`), and removing it must produce none.
    #[test]
    fn deliberate_unwrap_fails_and_clean_code_passes() {
        let dirty = fixture_workspace(
            "dirty",
            "pub fn first(v: &[u32]) -> u32 {\n    v.first().copied().unwrap()\n}\n",
        );
        let analysis = analyze_workspace(&dirty, &dirty.join("xtask/allow.toml")).unwrap();
        assert_eq!(analysis.violations.len(), 1, "{:?}", analysis.violations);
        assert_eq!(analysis.violations[0].rule.code(), "FC001");
        assert_eq!(analysis.violations[0].line, 2);

        let clean = fixture_workspace(
            "clean",
            "pub fn first(v: &[u32]) -> Option<u32> {\n    v.first().copied()\n}\n",
        );
        let analysis = analyze_workspace(&clean, &clean.join("xtask/allow.toml")).unwrap();
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
        assert_eq!(analysis.files, 1);
    }

    #[test]
    fn allowlist_suppresses_and_reports_stale_entries() {
        let root = fixture_workspace(
            "allow",
            "pub fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n",
        );
        write(
            &root,
            "xtask/allow.toml",
            r#"
[[allow]]
rule = "no-panic"
path = "crates/demo/src/lib.rs"
pattern = "first().copied().unwrap()"
reason = "demo"

[[allow]]
rule = "no-panic"
path = "crates/demo/src/nonexistent.rs"
reason = "stale"
"#,
        );
        let analysis = analyze_workspace(&root, &root.join("xtask/allow.toml")).unwrap();
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
        assert_eq!(analysis.suppressed.len(), 1);
        assert_eq!(analysis.unused_allows.len(), 1);
        assert_eq!(analysis.unused_allows[0].reason, "stale");
    }

    #[test]
    fn module_collision_is_detected_across_a_crate() {
        let root = fixture_workspace("collide", "pub fn ok() {}\n");
        write(&root, "crates/demo/src/error.rs", "pub struct E;\n");
        write(&root, "crates/demo/src/errors.rs", "pub struct E2;\n");
        let analysis = analyze_workspace(&root, &root.join("xtask/allow.toml")).unwrap();
        assert_eq!(analysis.violations.len(), 1, "{:?}", analysis.violations);
        assert_eq!(analysis.violations[0].rule.code(), "FC003");
    }

    #[test]
    fn malformed_allowlist_is_a_hard_error() {
        let root = fixture_workspace("badallow", "pub fn ok() {}\n");
        write(
            &root,
            "xtask/allow.toml",
            "[[allow]]\nrule = \"no-panic\"\n",
        );
        let err = analyze_workspace(&root, &root.join("xtask/allow.toml")).unwrap_err();
        assert!(err.contains("path") || err.contains("reason"), "{err}");
    }
}
