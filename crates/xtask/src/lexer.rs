//! A minimal Rust lexer sufficient for the `analyze` rules.
//!
//! The container this workspace builds in cannot fetch external crates, so
//! the analyzer cannot lean on `syn`; instead it tokenizes just enough of
//! the language to answer the questions the rules ask: identifiers, puncts,
//! string/char/lifetime disambiguation, nested block comments, raw strings,
//! and doc comments (kept, because the `# Invariants` rule inspects them).
//!
//! The lexer is intentionally forgiving: on malformed input it produces a
//! best-effort token stream rather than erroring, because the compiler gates
//! real syntax errors long before `cargo xtask analyze` runs in CI.

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text (for identifiers and doc comments; puncts carry the char).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// 1-based column the token starts at.
    pub col: usize,
}

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`, with the `r#` kept).
    Ident,
    /// A single punctuation character (`.`, `!`, `<`, `{`, ...).
    Punct,
    /// String, byte-string, raw-string, or char literal (text is dropped).
    Literal,
    /// Numeric literal.
    Number,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// `///` or `//!` doc comment (text is the content after the marker).
    DocComment,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: usize, col: usize) -> Token {
        Token {
            kind,
            text: text.into(),
            line,
            col,
        }
    }

    /// True for a punct token of exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// Tokenizes Rust source. Plain comments vanish; doc comments survive as
/// [`TokenKind::DocComment`] tokens so rules can inspect documentation.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (line, col) = (self.line, self.col);
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line, col),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(line, col),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump();
                    self.string_literal(line, col);
                }
                b'r' | b'b'
                    if self.raw_string_hashes().is_some()
                        || (c == b'b'
                            && self.peek(1) == Some(b'r')
                            && self.raw_string_hashes_at(2).is_some()) =>
                {
                    self.raw_string(line, col)
                }
                b'\'' => self.char_or_lifetime(line, col),
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(line, col),
                _ if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.out.push(Token::new(
                        TokenKind::Punct,
                        (c as char).to_string(),
                        line,
                        col,
                    ));
                    self.bump();
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    /// If the cursor sits on `r"`, `r#"`, `r##"`, ... returns the hash count.
    fn raw_string_hashes(&self) -> Option<usize> {
        if self.src[self.pos] != b'r' {
            return None;
        }
        self.raw_string_hashes_at(1)
    }

    fn raw_string_hashes_at(&self, mut i: usize) -> Option<usize> {
        let mut hashes = 0;
        while self.peek(i) == Some(b'#') {
            hashes += 1;
            i += 1;
        }
        // `r#ident` is a raw identifier, not a raw string.
        (self.peek(i) == Some(b'"')).then_some(hashes)
    }

    fn line_comment(&mut self, line: usize, col: usize) {
        // Distinguish `///` and `//!` (doc) from `//` and `////` (plain).
        let third = self.peek(2);
        let fourth = self.peek(3);
        let is_doc = matches!(third, Some(b'/') | Some(b'!')) && fourth != Some(b'/');
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.bump();
        }
        if is_doc {
            let text = String::from_utf8_lossy(&self.src[start + 3..self.pos]).into_owned();
            self.out
                .push(Token::new(TokenKind::DocComment, text, line, col));
        }
    }

    fn block_comment(&mut self) {
        // `/** ... */` and `/*! ... */` are doc comments too, but the rules
        // only read line-doc; block docs are rare and simply dropped.
        let mut depth = 0usize;
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    fn string_literal(&mut self, line: usize, col: usize) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.out.push(Token::new(TokenKind::Literal, "", line, col));
    }

    fn raw_string(&mut self, line: usize, col: usize) {
        if self.src[self.pos] == b'b' {
            self.bump();
        }
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.pos < self.src.len() && self.src[self.pos] == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        self.out.push(Token::new(TokenKind::Literal, "", line, col));
    }

    fn char_or_lifetime(&mut self, line: usize, col: usize) {
        // `'a` (no closing quote soon) is a lifetime; `'x'`, `'\n'` are chars.
        let is_char = match (self.peek(1), self.peek(2)) {
            (Some(b'\\'), _) => true,
            (Some(_), Some(b'\'')) => true,
            _ => false,
        };
        if is_char {
            self.bump(); // '
            if self.src.get(self.pos) == Some(&b'\\') {
                self.bump();
            }
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.bump();
            }
            if self.pos < self.src.len() {
                self.bump();
            }
            self.out.push(Token::new(TokenKind::Literal, "", line, col));
        } else {
            self.bump(); // '
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos] == b'_' || self.src[self.pos].is_ascii_alphanumeric())
            {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.out
                .push(Token::new(TokenKind::Lifetime, text, line, col));
        }
    }

    fn ident(&mut self, line: usize, col: usize) {
        let start = self.pos;
        // Raw identifier prefix.
        if self.src[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.bump();
            self.bump();
        }
        while self.pos < self.src.len()
            && (self.src[self.pos] == b'_' || self.src[self.pos].is_ascii_alphanumeric())
        {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token::new(TokenKind::Ident, text, line, col));
    }

    fn number(&mut self, line: usize, col: usize) {
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric()
                || self.src[self.pos] == b'_'
                || self.src[self.pos] == b'.')
        {
            // Stop at `..` (range) and method calls on literals (`1.max(2)`).
            if self.src[self.pos] == b'.'
                && !self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false)
            {
                break;
            }
            self.bump();
        }
        self.out.push(Token::new(TokenKind::Number, "", line, col));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_panics() {
        let src = r##"
            // panic! in a comment
            /* unwrap() in a block /* nested */ comment */
            let s = "panic!(\"in a string\")";
            let r = r#"unwrap() in a raw string"#;
            let b = b"expect in bytes";
        "##;
        let ids = idents(src);
        assert!(
            !ids.iter()
                .any(|i| i == "panic" || i == "unwrap" || i == "expect"),
            "{ids:?}"
        );
    }

    #[test]
    fn doc_comments_survive() {
        let toks = lex("/// # Invariants\n/// stays sorted\nfn f() {}\n");
        let docs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::DocComment)
            .collect();
        assert_eq!(docs.len(), 2);
        assert!(docs[0].text.contains("# Invariants"));
    }

    #[test]
    fn plain_quadruple_slash_is_not_doc() {
        let toks = lex("//// separator\nfn f() {}\n");
        assert!(toks.iter().all(|t| t.kind != TokenKind::DocComment));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(ids.contains(&"trim".to_string()));
        let toks = lex("'a");
        assert_eq!(toks[0].kind, TokenKind::Lifetime);
        assert_eq!(toks[0].text, "a");
    }

    #[test]
    fn char_literals_lex_as_literals() {
        let toks = lex("let c = 'x'; let n = '\\n'; let q = '\\'';");
        let lits = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("fn a() {}\nfn unwrap_site() {}\n");
        let t = toks.iter().find(|t| t.is_ident("unwrap_site")).unwrap();
        assert_eq!(t.line, 2);
    }

    #[test]
    fn raw_ident_is_single_token() {
        let ids = idents("let r#fn = 1;");
        assert!(ids.contains(&"r#fn".to_string()));
    }

    #[test]
    fn numbers_with_method_calls() {
        let ids = idents("let x = 1.max(2); let y = 1.5e3; let r = 0..10;");
        assert!(ids.contains(&"max".to_string()));
    }

    /// A raw string with embedded quotes and hashes must lex as one literal
    /// and leave line/col tracking intact for the tokens after it —
    /// path-aware rules anchor diagnostics on those positions.
    #[test]
    fn raw_strings_do_not_desync_positions() {
        let src = "let s = r#\"quote \" and // not a comment\n{ brace }\"#;\nlet marker = 1;\n";
        let toks = lex(src);
        assert!(
            !toks
                .iter()
                .any(|t| t.is_ident("comment") || t.is_ident("brace")),
            "raw string contents leaked: {toks:?}"
        );
        let t = toks.iter().find(|t| t.is_ident("marker")).unwrap();
        assert_eq!((t.line, t.col), (3, 5));
    }

    /// Rust block comments nest; the lexer must not resume at the first
    /// `*/` or everything after an inner comment shifts.
    #[test]
    fn nested_block_comments_do_not_desync_positions() {
        let src = "/* outer /* inner */ still comment\nmore */\nfn marker() {}\n";
        let toks = lex(src);
        assert!(
            !toks
                .iter()
                .any(|t| t.is_ident("still") || t.is_ident("more")),
            "nested comment leaked: {toks:?}"
        );
        let t = toks.iter().find(|t| t.is_ident("marker")).unwrap();
        assert_eq!((t.line, t.col), (3, 4));
    }

    /// Lifetime ticks must consume exactly the lifetime, keeping the
    /// columns of the tokens that follow on the same line.
    #[test]
    fn lifetime_ticks_keep_columns() {
        let toks = lex("fn f<'a, 'b>(x: &'a str) -> &'b str { x }");
        let t = toks.iter().find(|t| t.is_ident("str")).unwrap();
        assert_eq!((t.line, t.col), (1, 21));
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 4);
    }
}
