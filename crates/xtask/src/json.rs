//! Machine-readable analyzer output (`cargo xtask analyze --json`).
//!
//! A SARIF-flavoured report, hand-rolled because this build environment has
//! no serde: one top-level object with the tool's rule catalog, every
//! unsuppressed finding as a `results` entry, suppressed findings with
//! their allowlist reasons, and stale allowlist entries. CI uploads the
//! file as an artifact and cross-checks its `summary` against the
//! human-readable exit code, so the two output paths can never diverge.
//!
//! The output is deterministic: the driver sorts diagnostics by
//! `(path, line, col, rule)` before rendering, and this module adds no
//! iteration over unordered containers.

use crate::allow::AllowEntry;
use crate::diag::{Diagnostic, Rule};
use crate::Analysis;
use std::fmt::Write;

/// Renders the whole analysis as a single JSON document (trailing newline
/// included).
pub fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"focus-xtask-analyze/1\",\n");
    out.push_str("  \"tool\": {\n    \"name\": \"xtask analyze\",\n    \"rules\": [\n");
    let rules = Rule::all();
    for (i, rule) in rules.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"id\": {}, \"name\": {}, \"rationale\": {}}}{}\n",
            string(rule.code()),
            string(rule.name()),
            string(rule.rationale()),
            comma(i, rules.len())
        );
    }
    out.push_str("    ]\n  },\n");
    let _ = write!(out, "  \"files\": {},\n", analysis.files);

    out.push_str("  \"results\": [\n");
    for (i, d) in analysis.violations.iter().enumerate() {
        let _ = write!(
            out,
            "    {}{}\n",
            result(d, None),
            comma(i, analysis.violations.len())
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"suppressed\": [\n");
    for (i, (d, reason)) in analysis.suppressed.iter().enumerate() {
        let _ = write!(
            out,
            "    {}{}\n",
            result(d, Some(reason)),
            comma(i, analysis.suppressed.len())
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"staleAllows\": [\n");
    for (i, a) in analysis.unused_allows.iter().enumerate() {
        let _ = write!(
            out,
            "    {}{}\n",
            stale(a),
            comma(i, analysis.unused_allows.len())
        );
    }
    out.push_str("  ],\n");

    let _ = write!(
        out,
        "  \"summary\": {{\"violations\": {}, \"suppressed\": {}, \"staleAllows\": {}, \"clean\": {}}}\n",
        analysis.violations.len(),
        analysis.suppressed.len(),
        analysis.unused_allows.len(),
        analysis.violations.is_empty() && analysis.unused_allows.is_empty()
    );
    out.push_str("}\n");
    out
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// One finding as a JSON object (single line).
fn result(d: &Diagnostic, reason: Option<&str>) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"rule\": {}, \"ruleName\": {}, \"level\": \"error\", \"path\": {}, \
         \"line\": {}, \"col\": {}, \"message\": {}, \"help\": {}",
        string(d.rule.code()),
        string(d.rule.name()),
        string(&d.path),
        d.line,
        d.col,
        string(&d.message),
        string(&d.help),
    );
    if let Some(snippet) = &d.snippet {
        let _ = write!(s, ", \"snippet\": {}", string(snippet));
    }
    if let Some(reason) = reason {
        let _ = write!(s, ", \"reason\": {}", string(reason));
    }
    s.push('}');
    s
}

/// One stale allowlist entry as a JSON object (single line).
fn stale(a: &AllowEntry) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"rule\": {}, \"path\": {}",
        string(a.rule.name()),
        string(&a.path)
    );
    if let Some(line) = a.line {
        let _ = write!(s, ", \"line\": {line}");
    }
    if let Some(pattern) = &a.pattern {
        let _ = write!(s, ", \"pattern\": {}", string(pattern));
    }
    let _ = write!(s, ", \"reason\": {}}}", string(&a.reason));
    s
}

/// JSON string escaping per RFC 8259: `"`, `\`, and control characters.
fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Analysis {
        Analysis {
            violations: vec![Diagnostic {
                rule: Rule::NondetIteration,
                path: "crates/align/src/minimizer.rs".into(),
                line: 109,
                col: 9,
                message: "iteration over `HashMap` (`votes`) in hash order".into(),
                snippet: Some("        for ((read, diag), count) in votes {".into()),
                help: "collect and sort, or use a \"BTreeMap\"".into(),
            }],
            suppressed: vec![(
                Diagnostic {
                    rule: Rule::AmbientNondet,
                    path: "crates/exec/src/lib.rs".into(),
                    line: 50,
                    col: 1,
                    message: "`available_parallelism()` reads the machine's core count".into(),
                    snippet: None,
                    help: "h".into(),
                },
                "threads=0 resolves to all cores; data path is count-independent".into(),
            )],
            unused_allows: vec![],
            files: 3,
        }
    }

    #[test]
    fn renders_valid_shape_with_escapes() {
        let json = render(&sample());
        assert!(
            json.contains("\"schema\": \"focus-xtask-analyze/1\""),
            "{json}"
        );
        assert!(json.contains("\"rule\": \"FC007\""), "{json}");
        assert!(json.contains("\\\"BTreeMap\\\""), "quotes escaped: {json}");
        assert!(
            json.contains("\"summary\": {\"violations\": 1, \"suppressed\": 1, \"staleAllows\": 0, \"clean\": false}"),
            "{json}"
        );
        // Balanced braces/brackets outside string literals — a cheap
        // well-formedness proxy that catches missed commas and unterminated
        // strings in review.
        let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
        for c in json.chars() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string: {json}");
        assert_eq!(depth, 0, "{json}");
    }

    #[test]
    fn clean_analysis_reports_clean_true() {
        let a = Analysis {
            violations: vec![],
            suppressed: vec![],
            unused_allows: vec![],
            files: 42,
        };
        let json = render(&a);
        assert!(json.contains("\"clean\": true"), "{json}");
        assert!(json.contains("\"files\": 42"), "{json}");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(string("a\tb\nc\"d\\e"), "\"a\\tb\\nc\\\"d\\\\e\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }
}
