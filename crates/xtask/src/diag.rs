//! rustc-style diagnostics for the analyzer.

use std::fmt;

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// FC001 — `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in non-test library code.
    NoPanic,
    /// FC002 — `Result<_, String>` in a public signature.
    StringError,
    /// FC003 — near-colliding module filenames within one crate.
    ModuleCollision,
    /// FC004 — a `pub fn` mutating a graph/partition/level-set parameter
    /// without a typed-`Result` return or a `# Invariants` doc section.
    InvariantDoc,
    /// FC005 — raw `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in
    /// non-test library code; diagnostics belong on fc-obs events.
    NoPrint,
    /// FC006 — an unbounded channel or queue constructor in non-test
    /// library code without a documented capacity bound nearby.
    NoUnboundedQueue,
    /// FC007 — iteration over a `HashMap`/`HashSet` in non-test library
    /// code whose order is not canonicalized by an adjacent sort.
    NondetIteration,
    /// FC008 — ambient nondeterminism (`Instant::now`, `SystemTime::now`,
    /// `std::env::var`, `available_parallelism`) outside the fc-obs timing
    /// sink.
    AmbientNondet,
    /// FC009 — a cycle in the workspace lock-order graph: two lock sites
    /// that acquire the same Mutex/RwLock pair in opposite orders.
    LockOrder,
    /// FC010 — an `unsafe` block/fn/impl without an adjacent `// SAFETY:`
    /// comment.
    UnsafeHygiene,
    /// FC011 — an unbounded whole-input read (`fs::read`,
    /// `fs::read_to_string`, `read_to_end`, `read_to_string`) in non-test
    /// library code; data paths must stream through bounded buffers.
    UnboundedRead,
}

impl Rule {
    /// Stable diagnostic code, shown as `error[FC00x]`.
    pub fn code(&self) -> &'static str {
        match self {
            Rule::NoPanic => "FC001",
            Rule::StringError => "FC002",
            Rule::ModuleCollision => "FC003",
            Rule::InvariantDoc => "FC004",
            Rule::NoPrint => "FC005",
            Rule::NoUnboundedQueue => "FC006",
            Rule::NondetIteration => "FC007",
            Rule::AmbientNondet => "FC008",
            Rule::LockOrder => "FC009",
            Rule::UnsafeHygiene => "FC010",
            Rule::UnboundedRead => "FC011",
        }
    }

    /// The name used in `xtask/allow.toml` entries.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::StringError => "no-string-error",
            Rule::ModuleCollision => "no-module-collision",
            Rule::InvariantDoc => "invariant-doc",
            Rule::NoPrint => "no-print",
            Rule::NoUnboundedQueue => "no-unbounded-queue",
            Rule::NondetIteration => "nondet-iteration",
            Rule::AmbientNondet => "ambient-nondet",
            Rule::LockOrder => "lock-order",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::UnboundedRead => "no-unbounded-read",
        }
    }

    /// Parses an allowlist rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-panic" => Some(Rule::NoPanic),
            "no-string-error" => Some(Rule::StringError),
            "no-module-collision" => Some(Rule::ModuleCollision),
            "invariant-doc" => Some(Rule::InvariantDoc),
            "no-print" => Some(Rule::NoPrint),
            "no-unbounded-queue" => Some(Rule::NoUnboundedQueue),
            "nondet-iteration" => Some(Rule::NondetIteration),
            "ambient-nondet" => Some(Rule::AmbientNondet),
            "lock-order" => Some(Rule::LockOrder),
            "unsafe-hygiene" => Some(Rule::UnsafeHygiene),
            "no-unbounded-read" => Some(Rule::UnboundedRead),
            _ => None,
        }
    }

    /// All rules, for `--list-rules`.
    pub fn all() -> [Rule; 11] {
        [
            Rule::NoPanic,
            Rule::StringError,
            Rule::ModuleCollision,
            Rule::InvariantDoc,
            Rule::NoPrint,
            Rule::NoUnboundedQueue,
            Rule::NondetIteration,
            Rule::AmbientNondet,
            Rule::LockOrder,
            Rule::UnsafeHygiene,
            Rule::UnboundedRead,
        ]
    }

    /// One-line rationale shown by `--list-rules`.
    pub fn rationale(&self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "library code must surface failures as typed errors that cross \
                 crate boundaries (FocusError/DistError/SeqError), not abort the rank"
            }
            Rule::StringError => {
                "`Result<_, String>` erases the failure mode; callers cannot match \
                 on it and recovery code degenerates to string sniffing"
            }
            Rule::ModuleCollision => {
                "near-identical module names (`error.rs` vs `errors.rs`) make every \
                 import a coin flip and code review unreliable"
            }
            Rule::InvariantDoc => {
                "a pub fn mutating a DiGraph, partition vector, or hybrid level set \
                 must either return a typed error or document its `# Invariants`"
            }
            Rule::NoPrint => {
                "raw stdout/stderr prints in library code bypass the structured \
                 observability layer; record an fc-obs event or metric instead so \
                 diagnostics stay machine-readable and deterministic"
            }
            Rule::NoUnboundedQueue => {
                "an unbounded channel or queue in library code turns overload into \
                 an OOM kill; size it from a config capacity, or document the bound \
                 that the surrounding code enforces on the same or preceding lines"
            }
            Rule::NondetIteration => {
                "HashMap/HashSet iteration order varies per process; on a data path \
                 it silently breaks the bit-identical-contigs contract in ways the \
                 chaos tests only catch probabilistically — sort the result \
                 adjacently, use a BTreeMap/BTreeSet, or allowlist a commutative \
                 reduction with a reason"
            }
            Rule::AmbientNondet => {
                "wall clock, environment and core counts are ambient inputs; they \
                 may feed sched.*-excluded metrics or the config layer, but a read \
                 on a data path makes output depend on the machine and the moment"
            }
            Rule::LockOrder => {
                "two functions acquiring the same Mutex/RwLock pair in opposite \
                 orders can deadlock under concurrency the tests never schedule; \
                 the workspace lock-order graph must stay acyclic"
            }
            Rule::UnsafeHygiene => {
                "every unsafe block or fn must carry an adjacent `// SAFETY:` \
                 comment stating the invariant that makes it sound — the guard \
                 rail the SIMD kernels depend on"
            }
            Rule::UnboundedRead => {
                "`fs::read`/`read_to_end`-style slurps size the allocation by the \
                 input, so one oversized file defeats every memory budget; data \
                 paths must stream through bounded buffers (BufReader, Read::take, \
                 the paged store), with small fixed-size records allowlisted"
            }
        }
    }
}

/// One finding, printable in rustc style.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 when the finding is file-level, e.g. FC003).
    pub line: usize,
    /// 1-based column (0 when unknown).
    pub col: usize,
    pub message: String,
    /// The offending source line, if any.
    pub snippet: Option<String>,
    pub help: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule.code(), self.message)?;
        if self.line > 0 {
            writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col.max(1))?;
        } else {
            writeln!(f, "  --> {}", self.path)?;
        }
        if let Some(snippet) = &self.snippet {
            writeln!(f, "   |")?;
            writeln!(f, "   | {}", snippet.trim_end())?;
        }
        write!(f, "   = help: {}", self.help)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_rustc_shape() {
        let d = Diagnostic {
            rule: Rule::NoPanic,
            path: "crates/seq/src/store.rs".into(),
            line: 42,
            col: 17,
            message: "`.unwrap()` in non-test library code".into(),
            snippet: Some("    let x = v.pop().unwrap();".into()),
            help: "return a typed error or allowlist in xtask/allow.toml".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("error[FC001]:"), "{s}");
        assert!(s.contains("--> crates/seq/src/store.rs:42:17"), "{s}");
        assert!(s.contains("= help:"), "{s}");
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::all() {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("bogus"), None);
    }
}
