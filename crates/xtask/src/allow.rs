//! The checked-in allowlist (`xtask/allow.toml`).
//!
//! The container cannot fetch a TOML crate, so this module parses the small
//! TOML subset the allowlist actually uses: `[[allow]]` table arrays whose
//! entries are `key = "string"` or `key = integer` lines, plus comments and
//! blank lines. Anything else is a hard error — a malformed allowlist must
//! not silently allow everything.

use crate::diag::{Diagnostic, Rule};

/// One allowlist entry. `path` is matched as a suffix of the diagnostic's
/// workspace-relative path; `line` and `pattern` (a substring of the
/// offending source line) narrow the match further when present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub line: Option<usize>,
    pub pattern: Option<String>,
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry suppress the diagnostic?
    pub fn matches(&self, d: &Diagnostic) -> bool {
        if self.rule != d.rule || !d.path.ends_with(&self.path) {
            return false;
        }
        if let Some(line) = self.line {
            if line != d.line {
                return false;
            }
        }
        if let Some(pattern) = &self.pattern {
            let hay = d.snippet.as_deref().unwrap_or("");
            if !hay.contains(pattern.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Parses `allow.toml` content. Returns entries or a line-numbered error.
pub fn parse(content: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<PartialEntry> = None;

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(p.finish()?);
            }
            current = Some(PartialEntry::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "allow.toml:{line_no}: expected `key = value`, got `{line}`"
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "allow.toml:{line_no}: `{}` outside an [[allow]] table",
                key.trim()
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" => {
                let name = parse_string(value, line_no)?;
                entry.rule = Some(Rule::from_name(&name).ok_or(format!(
                    "allow.toml:{line_no}: unknown rule `{name}` (see `cargo xtask analyze --list-rules`)"
                ))?);
            }
            "path" => entry.path = Some(parse_string(value, line_no)?),
            "line" => {
                entry.line = Some(value.parse().map_err(|_| {
                    format!("allow.toml:{line_no}: `line` must be an integer, got `{value}`")
                })?);
            }
            "pattern" => entry.pattern = Some(parse_string(value, line_no)?),
            "reason" => entry.reason = Some(parse_string(value, line_no)?),
            other => {
                return Err(format!("allow.toml:{line_no}: unknown key `{other}`"));
            }
        }
    }
    if let Some(p) = current.take() {
        entries.push(p.finish()?);
    }
    Ok(entries)
}

#[derive(Default)]
struct PartialEntry {
    rule: Option<Rule>,
    path: Option<String>,
    line: Option<usize>,
    pattern: Option<String>,
    reason: Option<String>,
}

impl PartialEntry {
    fn finish(self) -> Result<AllowEntry, String> {
        let rule = self.rule.ok_or("allow.toml: entry missing `rule`")?;
        let path = self.path.ok_or("allow.toml: entry missing `path`")?;
        let reason = self.reason.ok_or(
            "allow.toml: entry missing `reason` (every \
             suppression must say why the site is sound)",
        )?;
        if reason.trim().is_empty() {
            return Err("allow.toml: `reason` must not be empty".to_string());
        }
        Ok(AllowEntry {
            rule,
            path,
            line: self.line,
            pattern: self.pattern,
            reason,
        })
    }
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
fn parse_string(value: &str, line_no: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or(format!(
            "allow.toml:{line_no}: expected a double-quoted string, got `{value}`"
        ))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(format!(
                        "allow.toml:{line_no}: unsupported escape `\\{other}`"
                    ))
                }
                None => return Err(format!("allow.toml:{line_no}: dangling escape")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Justified panic sites.
[[allow]]
rule = "no-panic"
path = "crates/dist/src/cluster.rs"
pattern = "clock times are finite"
reason = "sort comparator over virtual clocks, which are never NaN"

[[allow]]
rule = "invariant-doc"
path = "crates/graph/src/digraph.rs"
line = 10
reason = "documented at the impl level"
"#;

    #[test]
    fn parses_entries() {
        let entries = parse(SAMPLE).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, Rule::NoPanic);
        assert_eq!(
            entries[0].pattern.as_deref(),
            Some("clock times are finite")
        );
        assert_eq!(entries[1].line, Some(10));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = parse("[[allow]]\nrule = \"no-panic\"\npath = \"a.rs\"\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let err =
            parse("[[allow]]\nrule = \"nope\"\npath = \"a.rs\"\nreason = \"r\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn keys_outside_tables_are_errors() {
        let err = parse("rule = \"no-panic\"\n").unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn matching_respects_rule_path_line_pattern() {
        let entries = parse(SAMPLE).unwrap();
        let mut d = Diagnostic {
            rule: Rule::NoPanic,
            path: "crates/dist/src/cluster.rs".into(),
            line: 328,
            col: 1,
            message: String::new(),
            snippet: Some("  .expect(\"clock times are finite\")".into()),
            help: String::new(),
        };
        assert!(entries[0].matches(&d));
        d.snippet = Some("something else".into());
        assert!(!entries[0].matches(&d));
        d.rule = Rule::StringError;
        assert!(!entries[0].matches(&d));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let entries = parse(
            "[[allow]]\nrule = \"no-panic\"\npath = \"a.rs\"\nreason = \"uses # in text\" # trailing\n",
        )
        .unwrap();
        assert_eq!(entries[0].reason, "uses # in text");
    }
}
