//! Suffix array over a concatenated read subset.
//!
//! The paper indexes each reference read subset with a suffix array (§II-B,
//! citing Larsson & Sadakane's "Faster Suffix Sorting"). We build the array
//! with prefix doubling over integer ranks — the same rank-refinement idea as
//! Larsson–Sadakane, implemented with comparison sorts for clarity — giving
//! `O(n log n)` rank rounds at `O(n log n)` each. Reads are concatenated with
//! a separator symbol smaller than every base so no match can span two reads.

use fc_seq::{DnaString, ReadId};

/// Byte used between concatenated reads. Must sort below all base codes.
const SEPARATOR: u8 = 0;

/// Base codes are shifted by this amount so the separator stays unique.
const BASE_SHIFT: u8 = 1;

/// A suffix array over the concatenation of a set of reads, with the mapping
/// back from text positions to `(read, offset)` pairs.
#[derive(Debug, Clone)]
pub struct SuffixArray {
    /// Concatenated text: shifted base codes with separators between reads.
    text: Vec<u8>,
    /// Sorted suffix start positions.
    sa: Vec<u32>,
    /// Start offset of each read within `text` (parallel to `ids`).
    read_starts: Vec<u32>,
    /// The reads, in concatenation order.
    ids: Vec<ReadId>,
}

impl SuffixArray {
    /// Builds the index over `reads` (id + sequence pairs).
    pub fn build(reads: &[(ReadId, &DnaString)]) -> SuffixArray {
        let total: usize = reads.iter().map(|(_, s)| s.len() + 1).sum();
        let mut text = Vec::with_capacity(total);
        let mut read_starts = Vec::with_capacity(reads.len());
        let mut ids = Vec::with_capacity(reads.len());
        for (id, seq) in reads {
            read_starts.push(text.len() as u32);
            ids.push(*id);
            for b in seq.iter() {
                text.push(b.code() + BASE_SHIFT);
            }
            text.push(SEPARATOR);
        }
        let sa = build_suffix_array(&text);
        SuffixArray {
            text,
            sa,
            read_starts,
            ids,
        }
    }

    /// Number of indexed reads.
    pub fn read_count(&self) -> usize {
        self.ids.len()
    }

    /// Length of the concatenated text (including separators).
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// The sorted suffix positions (exposed for tests and diagnostics).
    pub fn positions(&self) -> &[u32] {
        &self.sa
    }

    /// Finds every occurrence of the packed k-mer `kmer` (as produced by
    /// [`DnaString::kmer_u64`]) and reports each as `(read id, offset within
    /// that read)`.
    #[deprecated(
        note = "allocates a fresh Vec per lookup; use find_kmer_into with a reused buffer"
    )]
    pub fn find_kmer(&self, kmer: u64, k: usize) -> Vec<(ReadId, u32)> {
        let mut out = Vec::new();
        self.find_kmer_into(kmer, k, &mut out);
        out
    }

    /// Like [`SuffixArray::find_kmer`] but appends the hits to a
    /// caller-provided buffer after clearing it — the zero-allocation variant
    /// for the overlapper's hot loop (one lookup per sampled query seed).
    /// The pattern itself lives on the stack: `kmer_u64` packs at most 32
    /// bases.
    pub fn find_kmer_into(&self, kmer: u64, k: usize, out: &mut Vec<(ReadId, u32)>) {
        out.clear();
        let k = k.min(32);
        let mut pattern = [0u8; 32];
        for (i, slot) in pattern.iter_mut().enumerate().take(k) {
            *slot = (((kmer >> (2 * i)) & 0b11) as u8) + BASE_SHIFT;
        }
        let (lo, hi) = self.interval(&pattern[..k]);
        out.extend(self.sa[lo..hi].iter().map(|&pos| self.locate(pos)));
    }

    /// Binary-searches the half-open suffix-array interval of suffixes that
    /// start with `pattern`.
    fn interval(&self, pattern: &[u8]) -> (usize, usize) {
        use std::cmp::Ordering;
        // Compares a suffix against the pattern by the pattern's length: a
        // suffix that is a proper prefix of the pattern sorts before it.
        let cmp = |pos: u32| -> Ordering {
            let suffix = &self.text[pos as usize..];
            let n = suffix.len().min(pattern.len());
            match suffix[..n].cmp(&pattern[..n]) {
                Ordering::Equal if suffix.len() < pattern.len() => Ordering::Less,
                o => o,
            }
        };
        let lo = self.sa.partition_point(|&pos| cmp(pos) == Ordering::Less);
        let hi = lo + self.sa[lo..].partition_point(|&pos| cmp(pos) == Ordering::Equal);
        (lo, hi)
    }

    /// Maps a text position to `(read id, offset within read)`.
    fn locate(&self, pos: u32) -> (ReadId, u32) {
        let idx = match self.read_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (self.ids[idx], pos - self.read_starts[idx])
    }
}

/// Prefix-doubling suffix array construction.
///
/// Ranks start from single symbols and double the compared prefix length each
/// round until all ranks are distinct.
fn build_suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = text.iter().map(|&c| c as u32).collect();
    let mut next_rank = vec![0u32; n];
    let mut len = 1usize;

    // Key of suffix i when comparing by 2*len symbols: (rank[i], rank[i+len]).
    let key = |rank: &[u32], i: u32, len: usize| -> (u32, u32) {
        let second = rank.get(i as usize + len).map_or(0, |&r| r + 1);
        (rank[i as usize], second)
    };

    loop {
        sa.sort_unstable_by_key(|&i| key(&rank, i, len));
        next_rank[sa[0] as usize] = 0;
        let mut distinct = 1u32;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            if key(&rank, cur, len) != key(&rank, prev, len) {
                distinct += 1;
            }
            next_rank[cur as usize] = distinct - 1;
        }
        std::mem::swap(&mut rank, &mut next_rank);
        if distinct as usize == n {
            break;
        }
        len *= 2;
    }
    sa
}

#[cfg(test)]
// The allocating lookup stays exercised as the reference for its
// zero-allocation replacement.
#[allow(deprecated)]
mod tests {
    use super::*;
    use fc_seq::DnaString;

    fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    #[test]
    fn doubling_matches_naive_on_fixed_strings() {
        for text in [
            b"banana".to_vec(),
            b"aaaaaa".to_vec(),
            b"abcabcabc".to_vec(),
            vec![3, 1, 2, 0, 3, 1, 2, 0],
            vec![1],
        ] {
            assert_eq!(
                build_suffix_array(&text),
                naive_suffix_array(&text),
                "{text:?}"
            );
        }
    }

    #[test]
    fn empty_text() {
        assert!(build_suffix_array(&[]).is_empty());
    }

    fn index_of(seqs: &[&str]) -> (SuffixArray, Vec<DnaString>) {
        let parsed: Vec<DnaString> = seqs.iter().map(|s| s.parse().unwrap()).collect();
        let refs: Vec<(ReadId, &DnaString)> = parsed
            .iter()
            .enumerate()
            .map(|(i, s)| (ReadId(i as u32), s))
            .collect();
        (SuffixArray::build(&refs), parsed)
    }

    #[test]
    fn find_kmer_reports_all_occurrences() {
        let (idx, seqs) = index_of(&["ACGTACGT", "TTACGTT"]);
        let k = 4;
        let kmer = seqs[0].kmer_u64(0, k).unwrap(); // ACGT
        let mut hits = idx.find_kmer(kmer, k);
        hits.sort();
        assert_eq!(hits, vec![(ReadId(0), 0), (ReadId(0), 4), (ReadId(1), 2)]);
    }

    #[test]
    fn no_match_across_read_boundary() {
        // "AC" ends read 0 and "GT" begins read 1; the 4-mer ACGT must not hit.
        let (idx, _) = index_of(&["AAAC", "GTTT"]);
        let pattern: DnaString = "ACGT".parse().unwrap();
        let hits = idx.find_kmer(pattern.kmer_u64(0, 4).unwrap(), 4);
        assert!(hits.is_empty());
    }

    #[test]
    fn missing_pattern_returns_empty() {
        let (idx, _) = index_of(&["AAAA", "CCCC"]);
        let pattern: DnaString = "GGGG".parse().unwrap();
        assert!(idx.find_kmer(pattern.kmer_u64(0, 4).unwrap(), 4).is_empty());
    }

    #[test]
    fn find_kmer_into_clears_and_matches_allocating_variant() {
        let (idx, seqs) = index_of(&["ACGTACGT", "TTACGTT"]);
        let k = 4;
        let kmer = seqs[0].kmer_u64(0, k).unwrap(); // ACGT
        let mut buf = vec![(ReadId(99), 99u32)]; // stale content must vanish
        idx.find_kmer_into(kmer, k, &mut buf);
        assert_eq!(buf, idx.find_kmer(kmer, k));
        // Reuse across lookups, including an empty result.
        let missing: DnaString = "GGGG".parse().unwrap();
        idx.find_kmer_into(missing.kmer_u64(0, 4).unwrap(), 4, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn locate_maps_offsets_correctly() {
        let (idx, seqs) = index_of(&["ACGGT", "CGGTA"]);
        let kmer = seqs[0].kmer_u64(1, 3).unwrap(); // CGG
        let mut hits = idx.find_kmer(kmer, 3);
        hits.sort();
        assert_eq!(hits, vec![(ReadId(0), 1), (ReadId(1), 0)]);
    }
}
