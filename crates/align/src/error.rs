//! Error type for the alignment stage.

use std::fmt;

/// Errors produced while configuring or running the overlap stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// An invalid overlap-stage parameter (see [`crate::OverlapConfig`]).
    Config {
        /// Offending parameter name (e.g. `k`).
        parameter: &'static str,
        /// What went wrong, including the offending value.
        message: String,
    },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::Config { parameter, message } => {
                write!(f, "invalid {parameter}: {message}")
            }
        }
    }
}

impl std::error::Error for AlignError {}
