//! Banded Needleman–Wunsch global alignment.
//!
//! Candidate overlaps suggested by k-mer seeding are verified with a banded
//! global alignment of the two overlapping regions (paper §II-B). The band is
//! centred on the main diagonal because the seeding stage already aligned the
//! regions' starting coordinates; its width only needs to absorb indel drift.

use fc_seq::DnaString;

/// Scoring and banding parameters for the aligner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NwConfig {
    /// Score added per matching column.
    pub match_score: i32,
    /// Score added per mismatching column (should be negative).
    pub mismatch_score: i32,
    /// Score added per gap column (should be negative).
    pub gap_score: i32,
    /// Half-width of the band around the main diagonal, in cells.
    pub band: usize,
}

impl Default for NwConfig {
    fn default() -> NwConfig {
        NwConfig {
            match_score: 1,
            mismatch_score: -2,
            gap_score: -3,
            band: 8,
        }
    }
}

/// Outcome of a banded global alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentSummary {
    /// Total alignment score.
    pub score: i32,
    /// Number of alignment columns (matches + mismatches + gaps).
    pub columns: u32,
    /// Number of matching columns.
    pub matches: u32,
}

impl AlignmentSummary {
    /// Fraction of columns that match, in `[0, 1]`. Zero columns yield 0.
    pub fn identity(&self) -> f64 {
        if self.columns == 0 {
            0.0
        } else {
            self.matches as f64 / self.columns as f64
        }
    }
}

/// Suggests a band half-width for aligning `len` bases at indel rate
/// `error_rate`, with a floor of 4 cells and 4-sigma style headroom.
pub fn band_for_error_rate(len: usize, error_rate: f64) -> usize {
    let expected = len as f64 * error_rate;
    (4.0 * expected.sqrt()).ceil().max(4.0) as usize
}

/// Reusable band buffers for [`banded_global_with`].
///
/// The four per-call `Vec`s of the banded DP were the aligner's dominant
/// allocation churn (one verify call per candidate pair). A scratch value —
/// owned per worker thread in the parallel overlapper — lets every call
/// recycle them; each call fully reinitialises the buffers, so results are
/// identical to the allocate-per-call path.
#[derive(Debug, Clone, Default)]
pub struct NwScratch {
    prev: Vec<i32>,
    cur: Vec<i32>,
    prev_cm: Vec<(u32, u32)>,
    cur_cm: Vec<(u32, u32)>,
}

/// Globally aligns `a[a_start..a_end]` against `b[b_start..b_end]` within a
/// band, returning the score/column/match summary, or `None` when the length
/// difference exceeds the band (the global path would leave the band).
pub fn banded_global(
    a: &DnaString,
    a_range: (usize, usize),
    b: &DnaString,
    b_range: (usize, usize),
    config: &NwConfig,
) -> Option<AlignmentSummary> {
    banded_global_with(a, a_range, b, b_range, config, &mut NwScratch::default())
}

/// [`banded_global`] with caller-provided band buffers (the zero-allocation
/// hot path; see [`NwScratch`]).
pub fn banded_global_with(
    a: &DnaString,
    a_range: (usize, usize),
    b: &DnaString,
    b_range: (usize, usize),
    config: &NwConfig,
    scratch: &mut NwScratch,
) -> Option<AlignmentSummary> {
    let (a_start, a_end) = a_range;
    let (b_start, b_end) = b_range;
    assert!(
        a_start <= a_end && a_end <= a.len(),
        "a range out of bounds"
    );
    assert!(
        b_start <= b_end && b_end <= b.len(),
        "b range out of bounds"
    );
    let n = a_end - a_start; // rows
    let m = b_end - b_start; // columns
    let band = config.band;
    if n.abs_diff(m) > band {
        return None;
    }

    const NEG: i32 = i32::MIN / 4;
    // Row-banded DP: row i covers columns j in [i-band, i+band] ∩ [0, m].
    let width = 2 * band + 1;
    // `clear` + `resize` refills every slot with the initial value, exactly
    // as the former `vec![...]` allocations did.
    let mut prev = &mut scratch.prev;
    let mut cur = &mut scratch.cur;
    let mut prev_cm = &mut scratch.prev_cm;
    let mut cur_cm = &mut scratch.cur_cm;
    prev.clear();
    prev.resize(width + 2, NEG);
    cur.clear();
    cur.resize(width + 2, NEG);
    prev_cm.clear();
    prev_cm.resize(width + 2, (0u32, 0u32));
    cur_cm.clear();
    cur_cm.resize(width + 2, (0u32, 0u32));

    // Maps column j of row i to a slot in the band buffer.
    let slot = |i: usize, j: usize| -> usize { j + band - i };

    // Row 0: leading gaps in `a`.
    for j in 0..=m.min(band) {
        prev[slot(0, j)] = config.gap_score * j as i32;
        prev_cm[slot(0, j)] = (j as u32, 0);
    }

    for i in 1..=n {
        cur.fill(NEG);
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band).min(m);
        for j in j_lo..=j_hi {
            let s = slot(i, j);
            let mut best = NEG;
            let mut best_cm = (0u32, 0u32);
            // Diagonal (match/mismatch) — prev row, same slot offset shifts by 0.
            if j >= 1 && j - 1 + band >= i - 1 && j - 1 <= i - 1 + band {
                let ps = slot(i - 1, j - 1);
                if prev[ps] > NEG {
                    let is_match = a.get(a_start + i - 1) == b.get(b_start + j - 1);
                    let sc = prev[ps]
                        + if is_match {
                            config.match_score
                        } else {
                            config.mismatch_score
                        };
                    if sc > best {
                        best = sc;
                        let (c, mt) = prev_cm[ps];
                        best_cm = (c + 1, mt + u32::from(is_match));
                    }
                }
            }
            // Up (gap in b): cell (i-1, j).
            if j + band >= i - 1 && j <= i - 1 + band {
                let ps = slot(i - 1, j);
                if prev[ps] > NEG {
                    let sc = prev[ps] + config.gap_score;
                    if sc > best {
                        best = sc;
                        let (c, mt) = prev_cm[ps];
                        best_cm = (c + 1, mt);
                    }
                }
            }
            // Left (gap in a): cell (i, j-1).
            if j >= 1 && j > j_lo {
                let ps = slot(i, j - 1);
                if cur[ps] > NEG {
                    let sc = cur[ps] + config.gap_score;
                    if sc > best {
                        best = sc;
                        let (c, mt) = cur_cm[ps];
                        best_cm = (c + 1, mt);
                    }
                }
            }
            cur[s] = best;
            cur_cm[s] = best_cm;
        }
        std::mem::swap(&mut prev, &mut cur);
        std::mem::swap(&mut prev_cm, &mut cur_cm);
    }

    let s = slot(n, m);
    if m + band < n || m > n + band || prev[s] <= NEG {
        return None;
    }
    let (columns, matches) = prev_cm[s];
    Some(AlignmentSummary {
        score: prev[s],
        columns,
        matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: full (unbanded) Needleman–Wunsch with the
    /// same (columns, matches) bookkeeping.
    pub(crate) fn full_global(a: &DnaString, b: &DnaString, config: &NwConfig) -> AlignmentSummary {
        let n = a.len();
        let m = b.len();
        let mut score = vec![vec![0i32; m + 1]; n + 1];
        let mut cm = vec![vec![(0u32, 0u32); m + 1]; n + 1];
        for j in 1..=m {
            score[0][j] = config.gap_score * j as i32;
            cm[0][j] = (j as u32, 0);
        }
        for i in 1..=n {
            score[i][0] = config.gap_score * i as i32;
            cm[i][0] = (i as u32, 0);
            for j in 1..=m {
                let is_match = a.get(i - 1) == b.get(j - 1);
                let diag = score[i - 1][j - 1]
                    + if is_match {
                        config.match_score
                    } else {
                        config.mismatch_score
                    };
                let up = score[i - 1][j] + config.gap_score;
                let left = score[i][j - 1] + config.gap_score;
                // Same tie preference as the banded version: diag, up, left.
                if diag >= up && diag >= left {
                    score[i][j] = diag;
                    let (c, mt) = cm[i - 1][j - 1];
                    cm[i][j] = (c + 1, mt + u32::from(is_match));
                } else if up >= left {
                    score[i][j] = up;
                    let (c, mt) = cm[i - 1][j];
                    cm[i][j] = (c + 1, mt);
                } else {
                    score[i][j] = left;
                    let (c, mt) = cm[i][j - 1];
                    cm[i][j] = (c + 1, mt);
                }
            }
        }
        AlignmentSummary {
            score: score[n][m],
            columns: cm[n][m].0,
            matches: cm[n][m].1,
        }
    }

    fn summary(a: &str, b: &str, band: usize) -> Option<AlignmentSummary> {
        let a: DnaString = a.parse().unwrap();
        let b: DnaString = b.parse().unwrap();
        let config = NwConfig {
            band,
            ..NwConfig::default()
        };
        banded_global(&a, (0, a.len()), &b, (0, b.len()), &config)
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let s = summary("ACGTACGT", "ACGTACGT", 4).unwrap();
        assert_eq!(s.score, 8);
        assert_eq!(s.columns, 8);
        assert_eq!(s.matches, 8);
        assert!((s.identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_mismatch_counted() {
        let s = summary("ACGTACGT", "ACGAACGT", 4).unwrap();
        assert_eq!(s.matches, 7);
        assert_eq!(s.columns, 8);
        assert_eq!(s.score, 7 - 2);
    }

    #[test]
    fn single_indel_counted() {
        let s = summary("ACGTACGT", "ACGACGT", 4).unwrap();
        assert_eq!(s.columns, 8);
        assert_eq!(s.matches, 7);
        assert_eq!(s.score, 7 - 3);
    }

    #[test]
    fn length_difference_beyond_band_rejected() {
        assert!(summary("ACGTACGTACGT", "AC", 4).is_none());
    }

    #[test]
    fn banded_matches_full_when_band_covers_matrix() {
        let cases = [
            ("ACGTACGTAC", "ACGTACGTAC"),
            ("ACGTACGTAC", "ACGTTCGTAC"),
            ("ACGTACGTAC", "ACGACGTAC"),
            ("AAAACCCC", "AAACCCCC"),
            ("ACGT", "TGCA"),
        ];
        for (a, b) in cases {
            let ad: DnaString = a.parse().unwrap();
            let bd: DnaString = b.parse().unwrap();
            let config = NwConfig {
                band: ad.len().max(bd.len()),
                ..NwConfig::default()
            };
            let banded = banded_global(&ad, (0, ad.len()), &bd, (0, bd.len()), &config).unwrap();
            let full = full_global(&ad, &bd, &config);
            assert_eq!(banded.score, full.score, "{a} vs {b}");
            assert_eq!(banded.columns, full.columns, "{a} vs {b}");
            assert_eq!(banded.matches, full.matches, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_ranges() {
        let a: DnaString = "ACGT".parse().unwrap();
        let s = banded_global(&a, (0, 0), &a, (0, 0), &NwConfig::default()).unwrap();
        assert_eq!(s.columns, 0);
        assert_eq!(s.score, 0);
        assert_eq!(s.identity(), 0.0);
    }

    #[test]
    fn subrange_alignment() {
        let a: DnaString = "TTTTACGTACGT".parse().unwrap();
        let b: DnaString = "ACGTACGTTTTT".parse().unwrap();
        let s = banded_global(&a, (4, 12), &b, (0, 8), &NwConfig::default()).unwrap();
        assert_eq!(s.matches, 8);
        assert_eq!(s.columns, 8);
    }

    #[test]
    fn band_for_error_rate_has_floor() {
        assert_eq!(band_for_error_rate(10, 0.0), 4);
        assert!(band_for_error_rate(10_000, 0.02) > 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::full_global;
    use super::*;
    use proptest::prelude::*;

    fn dna_strategy(max_len: usize) -> impl Strategy<Value = DnaString> {
        proptest::collection::vec(0u8..4, 0..max_len)
            .prop_map(|codes| codes.into_iter().map(fc_seq::Base::from_code).collect())
    }

    proptest! {
        /// With a band at least as wide as both sequences, banded NW must be
        /// exactly the classic full-matrix NW.
        #[test]
        fn banded_equals_full_with_wide_band(a in dna_strategy(24), b in dna_strategy(24)) {
            let config = NwConfig { band: a.len().max(b.len()).max(1), ..NwConfig::default() };
            let banded = banded_global(&a, (0, a.len()), &b, (0, b.len()), &config).unwrap();
            let full = full_global(&a, &b, &config);
            prop_assert_eq!(banded.score, full.score);
            prop_assert_eq!(banded.columns, full.columns);
            prop_assert_eq!(banded.matches, full.matches);
        }

        /// Aligning a sequence against itself scores perfectly.
        #[test]
        fn self_alignment_is_perfect(a in dna_strategy(32)) {
            let config = NwConfig::default();
            let s = banded_global(&a, (0, a.len()), &a, (0, a.len()), &config).unwrap();
            prop_assert_eq!(s.matches as usize, a.len());
            prop_assert_eq!(s.columns as usize, a.len());
        }

        /// Matches can never exceed columns, and identity is within [0, 1].
        #[test]
        fn summary_invariants(a in dna_strategy(20), b in dna_strategy(20)) {
            let config = NwConfig { band: 20, ..NwConfig::default() };
            if let Some(s) = banded_global(&a, (0, a.len()), &b, (0, b.len()), &config) {
                prop_assert!(s.matches <= s.columns);
                prop_assert!(s.columns as usize >= a.len().max(b.len()));
                prop_assert!((0.0..=1.0).contains(&s.identity()));
            }
        }
    }
}
