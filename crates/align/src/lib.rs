//! # fc-align — read overlap detection for the Focus assembler
//!
//! Implements the paper's §II-B alignment stage:
//!
//! * [`suffix`] — a suffix array over a concatenated read subset
//!   (prefix-doubling construction in the spirit of Larsson–Sadakane, the
//!   paper's ref. \[14\]), with pattern-interval lookup,
//! * [`nw`] — banded Needleman–Wunsch global alignment used to verify
//!   candidate overlaps,
//! * [`overlap`] — the overlap record vocabulary (suffix–prefix dovetails and
//!   containments, with alignment length and identity),
//! * [`pairwise`] — the subset-pair overlapper: k-mer seeding through the
//!   suffix array, diagonal voting, banded verification, thresholding on
//!   minimum overlap length and identity,
//! * [`minimizer`] — a minimizer (minimum-hash window) index, the modern
//!   hash-based alternative to the suffix array, provided for comparison,
//! * [`kernel`] — the pluggable alignment-kernel layer: the [`AlignKernel`]
//!   trait plus runtime dispatch ([`KernelKind`]) between the scalar
//!   reference, the bit-parallel prefilter and the SIMD-batched engine,
//! * [`myers`] — Myers' (1999) bit-parallel edit-distance kernel with the
//!   provable prefilter bounds,
//! * [`wide`] — the SIMD-batched (AVX2/SSE2, portable fallback) variant of
//!   the bit-parallel kernel.

pub mod error;
pub mod kernel;
pub mod minimizer;
pub mod myers;
pub mod nw;
pub mod overlap;
pub mod pairwise;
pub mod suffix;
pub mod wide;

pub use error::AlignError;
pub use fc_exec::Pool;
pub use kernel::{
    AlignKernel, KernelKind, KernelScratch, MyersKernel, ScalarKernel, VerifyParams, VerifyReq,
};
pub use myers::{
    edit_distance_with, identity_upper_bound, max_columns_bound, optimal_gap_bound,
    prefilter_compatible, MyersScratch,
};
pub use wide::WideKernel;
pub use minimizer::{minimizers, MinimizerIndex};
pub use nw::{
    band_for_error_rate, banded_global, banded_global_with, AlignmentSummary, NwConfig, NwScratch,
};
pub use overlap::{Overlap, OverlapKind};
pub use pairwise::{AlignScratch, OverlapConfig, Overlapper, PairStats};
pub use suffix::SuffixArray;
