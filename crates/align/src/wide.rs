//! The wide (SIMD-batched) bit-parallel kernel.
//!
//! [`WideKernel`] runs the same provably-sound prefilter pipeline as
//! [`MyersKernel`](crate::kernel::MyersKernel), but computes the edit
//! distances of several candidate pairs at once: one pair per 64-bit SIMD
//! lane (four lanes under AVX2, two under SSE2, detected at construction
//! with `is_x86_feature_detected!`; anything else falls back to the
//! portable word-at-a-time engine). Verdicts are bit-identical across all
//! three paths — the engines compute the same exact distance, and
//! everything downstream of the distance is shared code.
//!
//! # Lane layout: top-aligned patterns
//!
//! Batched lanes hold *different* patterns, so the classic bottom-aligned
//! Myers layout (row 0 at bit 0, last row at bit `plen-1 mod 64`) would
//! need per-lane score-bit masks and per-lane last-word handling. Instead
//! each lane's pattern is aligned to the **top** of its `w × 64` bits: row
//! `plen - 1` sits at bit 63 of word `w - 1` for every lane, so the
//! horizontal delta of the last row — the score update — is the plain sign
//! bit, uniform across lanes. The consequences:
//!
//! * the boundary row (+1 horizontal delta along the top text boundary)
//!   enters at per-lane bit `off = 64 w - plen`: a precomputed `INS` mask
//!   ORs it into `ph` (and clears it from `mh`) after the shift;
//! * ordinary word-to-word carries only apply to words *above* the lane's
//!   first pattern word: a per-lane, per-word `CARRY` mask gates them;
//! * bits below `off` in the first word are garbage, but provably inert:
//!   `Peq` is zero there, so `eq & pv` cannot generate an adder carry
//!   below the pattern region, and the only bit the left-shifts push into
//!   the region is the boundary bit, which `INS` overwrites.
//!
//! Lanes also carry different text lengths: a batch runs to the longest
//! text with per-column activity masks freezing finished lanes' scores
//! (their vectors keep evolving, which is harmless — the score was already
//! extracted by then).

use crate::kernel::{
    classify, finish_with_distance, AlignKernel, Classified, KernelScratch, VerifyParams,
    VerifyReq,
};
use crate::myers::{edit_distance_with, MyersScratch};
use crate::nw::AlignmentSummary;
use crate::pairwise::PairStats;
use fc_seq::{PackedView, ReadId, ReadStore};

/// SIMD width the batch engine runs at, chosen once at kernel construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    /// Four 64-bit lanes per vector (`std::arch` AVX2 intrinsics).
    Avx2,
    /// Two 64-bit lanes per vector (`std::arch` SSE2 intrinsics).
    Sse2,
    /// One pair at a time through the portable engine of [`crate::myers`].
    Portable,
}

/// The `Auto` kernel: bit-parallel prefilter with SIMD-batched distances.
#[derive(Debug, Clone, Copy)]
pub struct WideKernel {
    level: Level,
}

impl WideKernel {
    /// Probes CPU features once and picks the widest available engine.
    /// Detection only selects among bit-identical implementations, so the
    /// choice never affects output bytes.
    pub fn detect() -> WideKernel {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return WideKernel { level: Level::Avx2 };
            }
            if is_x86_feature_detected!("sse2") {
                return WideKernel { level: Level::Sse2 };
            }
        }
        WideKernel {
            level: Level::Portable,
        }
    }

    /// The portable-engine variant (any CPU; also the differential-test
    /// reference for the SIMD engines).
    pub fn portable() -> WideKernel {
        WideKernel {
            level: Level::Portable,
        }
    }

    #[cfg(all(test, target_arch = "x86_64"))]
    fn sse2() -> WideKernel {
        WideKernel { level: Level::Sse2 }
    }

    /// Computes the exact edit distance for every pending entry, batching
    /// same-word-count lanes together (sorted by text length so batch mates
    /// finish at similar columns). Entry order is untouched; results land
    /// in [`Pending::d`].
    fn compute_distances(&self, store: &ReadStore, wide: &mut WideScratch, myers: &mut MyersScratch) {
        let WideScratch {
            pending,
            order,
            bufs,
        } = wide;
        if self.level == Level::Portable {
            for p in pending.iter_mut() {
                p.d = edit_distance_with(
                    store.get(p.pat.0).seq.packed(),
                    (p.pat.1 as usize, p.pat.2 as usize),
                    store.get(p.text.0).seq.packed(),
                    (p.text.1 as usize, p.text.2 as usize),
                    myers,
                );
            }
            return;
        }
        let lanes_per = match self.level {
            Level::Avx2 => 4,
            _ => 2,
        };
        order.clear();
        order.extend(0..pending.len() as u32);
        order.sort_unstable_by_key(|&i| {
            let p = &pending[i as usize];
            (p.w, p.text.2 - p.text.1, i)
        });
        let mk_lane = |p: &Pending| -> Lane<'_> {
            Lane {
                pat: store.get(p.pat.0).seq.packed(),
                pstart: p.pat.1 as usize,
                plen: (p.pat.2 - p.pat.1) as usize,
                text: store.get(p.text.0).seq.packed(),
                tstart: p.text.1 as usize,
                tlen: (p.text.2 - p.text.1) as usize,
            }
        };
        let mut i = 0;
        while i < order.len() {
            let w = pending[order[i] as usize].w as usize;
            let mut j = i + 1;
            while j < order.len() && j - i < lanes_per && pending[order[j] as usize].w as usize == w
            {
                j += 1;
            }
            let group = &order[i..j];
            // Fixed-size lane array (no per-batch allocation); unused slots
            // repeat lane 0, which setup/engines ignore via `group.len()`.
            let first = mk_lane(&pending[group[0] as usize]);
            let mut lanes = [first; 4];
            for (t, &oi) in group.iter().enumerate() {
                lanes[t] = mk_lane(&pending[oi as usize]);
            }
            let ds = if self.level == Level::Avx2 {
                // SAFETY: `Level::Avx2` is only constructed by `detect()`
                // after `is_x86_feature_detected!("avx2")` returned true, so
                // the target feature is present on this CPU.
                unsafe { batch_avx2(&lanes[..group.len()], w, bufs) }
            } else {
                // SAFETY: only `Level::Sse2` remains (Portable returned
                // early above); its constructors require x86_64, where
                // SSE2 is architecturally guaranteed.
                unsafe { batch_sse2(&lanes[..group.len()], w, bufs) }
            };
            for (t, &oi) in group.iter().enumerate() {
                pending[oi as usize].d = ds[t] as u32;
            }
            i = j;
        }
    }
}

impl AlignKernel for WideKernel {
    fn name(&self) -> &'static str {
        match self.level {
            Level::Avx2 => "wide-avx2",
            Level::Sse2 => "wide-sse2",
            Level::Portable => "wide-portable",
        }
    }

    fn verify_batch(
        &self,
        store: &ReadStore,
        params: &VerifyParams,
        reqs: &[VerifyReq],
        scratch: &mut KernelScratch,
        stats: &mut PairStats,
        out: &mut Vec<Option<AlignmentSummary>>,
    ) {
        let KernelScratch { nw, myers, wide } = scratch;
        out.clear();
        out.resize(reqs.len(), None);
        wide.pending.clear();
        for (i, req) in reqs.iter().enumerate() {
            match classify(store, params, req, nw, stats) {
                Classified::Done(v) => out[i] = v,
                Classified::Finish(d) => {
                    out[i] = finish_with_distance(store, params, req, d, nw, stats);
                }
                Classified::NeedDistance => {
                    let (n, m) = (req.a_range.1 - req.a_range.0, req.b_range.1 - req.b_range.0);
                    // Pattern = shorter side (fewer words per column).
                    let (pat, text) = if n <= m {
                        ((req.a, req.a_range), (req.b, req.b_range))
                    } else {
                        ((req.b, req.b_range), (req.a, req.a_range))
                    };
                    let plen = pat.1 .1 - pat.1 .0;
                    wide.pending.push(Pending {
                        idx: i as u32,
                        pat: (pat.0, pat.1 .0 as u32, pat.1 .1 as u32),
                        text: (text.0, text.1 .0 as u32, text.1 .1 as u32),
                        w: plen.div_ceil(64) as u32,
                        d: 0,
                    });
                }
            }
        }
        stats.wide_lanes = stats.wide_lanes.saturating_add(wide.pending.len() as u64);
        self.compute_distances(store, wide, myers);
        for pi in 0..wide.pending.len() {
            let p = wide.pending[pi];
            let req = &reqs[p.idx as usize];
            out[p.idx as usize] = finish_with_distance(store, params, req, p.d, nw, stats);
        }
    }
}

/// One distance still to compute: request index, pattern/text read ranges,
/// pattern word count, and (after the batch stage) the distance.
#[derive(Debug, Clone, Copy)]
struct Pending {
    idx: u32,
    pat: (ReadId, u32, u32),
    text: (ReadId, u32, u32),
    w: u32,
    d: u32,
}

/// Reusable staging buffers for the batch engines (lives in
/// [`KernelScratch`], one per worker thread).
#[derive(Debug, Default)]
pub(crate) struct WideScratch {
    pending: Vec<Pending>,
    order: Vec<u32>,
    bufs: EngineBufs,
}

/// Word-major × lane-minor bit-vector buffers for one batch.
#[derive(Debug, Default)]
struct EngineBufs {
    /// `peq[(k·4 + code)·stride + lane]`: match mask of word `k`.
    peq: Vec<u64>,
    /// `pv/mv[k·stride + lane]`: vertical delta vectors.
    pv: Vec<u64>,
    mv: Vec<u64>,
    /// `ins[k·stride + lane]`: the lane's boundary-row bit in word `k`.
    ins: Vec<u64>,
    /// `carry[k·stride + lane]`: all-ones iff ordinary bit-0 carries apply
    /// to word `k` for this lane (words above the lane's first word).
    carry: Vec<u64>,
}

/// One lane of a distance batch.
#[derive(Clone, Copy)]
struct Lane<'a> {
    pat: PackedView<'a>,
    pstart: usize,
    plen: usize,
    text: PackedView<'a>,
    tstart: usize,
    tlen: usize,
}

/// Fills the per-batch tables for `lanes` (top-aligned `Peq`, boundary
/// `INS` bits, `CARRY` gates, initial `pv`/`mv`). Lane slots past
/// `lanes.len()` are left inert (zero `Peq`, zero activity).
fn setup(lanes: &[Lane<'_>], w: usize, stride: usize, bufs: &mut EngineBufs) {
    bufs.peq.clear();
    bufs.peq.resize(w * 4 * stride, 0);
    bufs.pv.clear();
    bufs.pv.resize(w * stride, !0u64);
    bufs.mv.clear();
    bufs.mv.resize(w * stride, 0);
    bufs.ins.clear();
    bufs.ins.resize(w * stride, 0);
    bufs.carry.clear();
    bufs.carry.resize(w * stride, 0);
    for (l, lane) in lanes.iter().enumerate() {
        debug_assert!(lane.plen >= 1 && lane.plen <= 64 * w);
        let off = 64 * w - lane.plen;
        let k0 = off / 64;
        bufs.ins[k0 * stride + l] = 1u64 << (off % 64);
        for k in k0 + 1..w {
            bufs.carry[k * stride + l] = !0u64;
        }
        let mut i = 0;
        while i < lane.plen {
            let chunk = (lane.plen - i).min(32);
            let mut win = lane.pat.window(lane.pstart + i);
            for b in 0..chunk {
                let bit = off + i + b;
                bufs.peq[((bit / 64) * 4 + (win & 0b11) as usize) * stride + l] |=
                    1u64 << (bit % 64);
                win >>= 2;
            }
            i += chunk;
        }
    }
}

/// The 2-bit code a lane contributes at text column `col` (0 past its end;
/// finished lanes are score-frozen, so the value is irrelevant).
#[inline]
fn lane_code(lanes: &[Lane<'_>], l: usize, col: usize) -> usize {
    match lanes.get(l) {
        Some(lane) if col < lane.tlen => lane.text.code(lane.tstart + col) as usize,
        _ => 0,
    }
}

/// -1 (active) or 0 (frozen) for lane `l` at column `col`.
#[inline]
fn lane_active(lanes: &[Lane<'_>], l: usize, col: usize) -> i64 {
    match lanes.get(l) {
        Some(lane) if col < lane.tlen => -1,
        _ => 0,
    }
}

/// Initial score (pattern length) for lane `l`.
#[inline]
fn lane_plen(lanes: &[Lane<'_>], l: usize) -> i64 {
    lanes.get(l).map_or(0, |lane| lane.plen as i64)
}

/// Four-lane AVX2 batch: global Myers over `w` words per lane, all four
/// patterns top-aligned. Returns the edit distance per lane.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `#[target_feature]` makes this fn unsafe-to-call; the only
// requirement is AVX2 availability, upheld by the `detect()` dispatch.
unsafe fn batch_avx2(lanes: &[Lane<'_>], w: usize, bufs: &mut EngineBufs) -> [u64; 4] {
    use std::arch::x86_64::*;
    const S: usize = 4;
    setup(lanes, w, S, bufs);
    let ones = _mm256_set1_epi64x(-1);
    let mut score = _mm256_set_epi64x(
        lane_plen(lanes, 3),
        lane_plen(lanes, 2),
        lane_plen(lanes, 1),
        lane_plen(lanes, 0),
    );
    let tmax = lanes.iter().map(|l| l.tlen).max().unwrap_or(0);
    for col in 0..tmax {
        let c = [
            lane_code(lanes, 0, col),
            lane_code(lanes, 1, col),
            lane_code(lanes, 2, col),
            lane_code(lanes, 3, col),
        ];
        let act = _mm256_set_epi64x(
            lane_active(lanes, 3, col),
            lane_active(lanes, 2, col),
            lane_active(lanes, 1, col),
            lane_active(lanes, 0, col),
        );
        let mut pos = _mm256_setzero_si256();
        let mut neg = _mm256_setzero_si256();
        for k in 0..w {
            let eq = _mm256_set_epi64x(
                bufs.peq[(k * 4 + c[3]) * S + 3] as i64,
                bufs.peq[(k * 4 + c[2]) * S + 2] as i64,
                bufs.peq[(k * 4 + c[1]) * S + 1] as i64,
                bufs.peq[(k * 4 + c[0]) * S] as i64,
            );
            let pv = _mm256_loadu_si256(bufs.pv.as_ptr().add(k * S) as *const __m256i);
            let mv = _mm256_loadu_si256(bufs.mv.as_ptr().add(k * S) as *const __m256i);
            let carry = _mm256_loadu_si256(bufs.carry.as_ptr().add(k * S) as *const __m256i);
            let ins = _mm256_loadu_si256(bufs.ins.as_ptr().add(k * S) as *const __m256i);
            let xv = _mm256_or_si256(eq, mv);
            let eqa = _mm256_or_si256(eq, _mm256_and_si256(neg, carry));
            let sum = _mm256_add_epi64(_mm256_and_si256(eqa, pv), pv);
            let xh = _mm256_or_si256(_mm256_xor_si256(sum, pv), eqa);
            let ph = _mm256_or_si256(mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv), ones));
            let mh = _mm256_and_si256(pv, xh);
            let hp = _mm256_srli_epi64(ph, 63);
            let hm = _mm256_srli_epi64(mh, 63);
            let ph = _mm256_or_si256(
                _mm256_or_si256(_mm256_slli_epi64(ph, 1), _mm256_and_si256(pos, carry)),
                ins,
            );
            let mh = _mm256_andnot_si256(
                ins,
                _mm256_or_si256(_mm256_slli_epi64(mh, 1), _mm256_and_si256(neg, carry)),
            );
            let new_pv = _mm256_or_si256(mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph), ones));
            let new_mv = _mm256_and_si256(ph, xv);
            _mm256_storeu_si256(bufs.pv.as_mut_ptr().add(k * S) as *mut __m256i, new_pv);
            _mm256_storeu_si256(bufs.mv.as_mut_ptr().add(k * S) as *mut __m256i, new_mv);
            pos = hp;
            neg = hm;
        }
        let delta = _mm256_sub_epi64(pos, neg);
        score = _mm256_add_epi64(score, _mm256_and_si256(delta, act));
    }
    let mut out = [0i64; 4];
    _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, score);
    [out[0] as u64, out[1] as u64, out[2] as u64, out[3] as u64]
}

/// Two-lane SSE2 batch; mirrors [`batch_avx2`] at half width.
///
/// # Safety
/// The caller must ensure the CPU supports SSE2 (architectural on x86_64).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// SAFETY: `#[target_feature]` makes this fn unsafe-to-call; SSE2 is part of
// the x86_64 baseline, which the cfg gate guarantees.
unsafe fn batch_sse2(lanes: &[Lane<'_>], w: usize, bufs: &mut EngineBufs) -> [u64; 4] {
    use std::arch::x86_64::*;
    const S: usize = 2;
    setup(lanes, w, S, bufs);
    let ones = _mm_set1_epi64x(-1);
    let mut score = _mm_set_epi64x(lane_plen(lanes, 1), lane_plen(lanes, 0));
    let tmax = lanes.iter().map(|l| l.tlen).max().unwrap_or(0);
    for col in 0..tmax {
        let c = [lane_code(lanes, 0, col), lane_code(lanes, 1, col)];
        let act = _mm_set_epi64x(lane_active(lanes, 1, col), lane_active(lanes, 0, col));
        let mut pos = _mm_setzero_si128();
        let mut neg = _mm_setzero_si128();
        for k in 0..w {
            let eq = _mm_set_epi64x(
                bufs.peq[(k * 4 + c[1]) * S + 1] as i64,
                bufs.peq[(k * 4 + c[0]) * S] as i64,
            );
            let pv = _mm_loadu_si128(bufs.pv.as_ptr().add(k * S) as *const __m128i);
            let mv = _mm_loadu_si128(bufs.mv.as_ptr().add(k * S) as *const __m128i);
            let carry = _mm_loadu_si128(bufs.carry.as_ptr().add(k * S) as *const __m128i);
            let ins = _mm_loadu_si128(bufs.ins.as_ptr().add(k * S) as *const __m128i);
            let xv = _mm_or_si128(eq, mv);
            let eqa = _mm_or_si128(eq, _mm_and_si128(neg, carry));
            let sum = _mm_add_epi64(_mm_and_si128(eqa, pv), pv);
            let xh = _mm_or_si128(_mm_xor_si128(sum, pv), eqa);
            let ph = _mm_or_si128(mv, _mm_andnot_si128(_mm_or_si128(xh, pv), ones));
            let mh = _mm_and_si128(pv, xh);
            let hp = _mm_srli_epi64(ph, 63);
            let hm = _mm_srli_epi64(mh, 63);
            let ph = _mm_or_si128(
                _mm_or_si128(_mm_slli_epi64(ph, 1), _mm_and_si128(pos, carry)),
                ins,
            );
            let mh = _mm_andnot_si128(
                ins,
                _mm_or_si128(_mm_slli_epi64(mh, 1), _mm_and_si128(neg, carry)),
            );
            let new_pv = _mm_or_si128(mh, _mm_andnot_si128(_mm_or_si128(xv, ph), ones));
            let new_mv = _mm_and_si128(ph, xv);
            _mm_storeu_si128(bufs.pv.as_mut_ptr().add(k * S) as *mut __m128i, new_pv);
            _mm_storeu_si128(bufs.mv.as_mut_ptr().add(k * S) as *mut __m128i, new_mv);
            pos = hp;
            neg = hm;
        }
        let delta = _mm_sub_epi64(pos, neg);
        score = _mm_add_epi64(score, _mm_and_si128(delta, act));
    }
    let mut out = [0i64; 2];
    _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, score);
    [out[0] as u64, out[1] as u64, 0, 0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::{Base, DnaString, Read, TrimConfig};

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    /// Store whose forward read `i` (id `2i`) holds `seqs[i]`.
    fn store_from(seqs: &[Vec<u8>]) -> ReadStore {
        let reads: Vec<Read> = seqs
            .iter()
            .enumerate()
            .map(|(i, codes)| {
                let s: DnaString = codes.iter().map(|&c| Base::from_code(c & 0b11)).collect();
                Read::new(format!("r{i}"), s)
            })
            .collect();
        ReadStore::preprocess(
            &reads,
            &TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Runs `kernel.compute_distances` over full-read pattern/text pairs
    /// `(pat_read, text_read)` (forward-read indices) and returns the
    /// distances in input order.
    fn distances(kernel: &WideKernel, store: &ReadStore, pairs: &[(usize, usize)]) -> Vec<u32> {
        let mut wide = WideScratch::default();
        let mut myers = MyersScratch::default();
        for (i, &(p, t)) in pairs.iter().enumerate() {
            let (pid, tid) = (ReadId(2 * p as u32), ReadId(2 * t as u32));
            let (plen, tlen) = (store.get(pid).seq.len(), store.get(tid).seq.len());
            // The engine requires pattern <= text; swap like the kernel does.
            let ((pid, plen2), (tid, tlen2)) = if plen <= tlen {
                ((pid, plen), (tid, tlen))
            } else {
                ((tid, tlen), (pid, plen))
            };
            wide.pending.push(Pending {
                idx: i as u32,
                pat: (pid, 0, plen2 as u32),
                text: (tid, 0, tlen2 as u32),
                w: plen2.div_ceil(64).max(1) as u32,
                d: 0,
            });
        }
        kernel.compute_distances(store, &mut wide, &mut myers);
        let mut out = vec![0u32; pairs.len()];
        for p in &wide.pending {
            out[p.idx as usize] = p.d;
        }
        out
    }

    fn engines() -> Vec<WideKernel> {
        let mut v = vec![WideKernel::portable()];
        #[cfg(target_arch = "x86_64")]
        {
            v.push(WideKernel::sse2());
            let auto = WideKernel::detect();
            if auto.level == Level::Avx2 {
                v.push(auto);
            }
        }
        v
    }

    #[test]
    fn simd_engines_match_portable_on_random_batches() {
        let mut rng = Rng(33);
        for round in 0..8 {
            // Lengths straddle the word boundaries; some pairs correlated.
            let lens = [1usize, 17, 63, 64, 65, 100, 127, 128, 129, 150];
            let mut seqs: Vec<Vec<u8>> = lens
                .iter()
                .map(|&n| (0..n).map(|_| (rng.next() % 4) as u8).collect())
                .collect();
            for i in 0..4 {
                // Mutated copy of a longer sequence, same length.
                let mut c = seqs[5 + i].clone();
                for _ in 0..rng.next() % 6 {
                    let p = (rng.next() as usize) % c.len();
                    c[p] = (rng.next() % 4) as u8;
                }
                seqs.push(c);
            }
            let store = store_from(&seqs);
            let mut pairs = Vec::new();
            for _ in 0..40 {
                pairs.push((
                    (rng.next() as usize) % seqs.len(),
                    (rng.next() as usize) % seqs.len(),
                ));
            }
            let reference = distances(&WideKernel::portable(), &store, &pairs);
            for kernel in engines() {
                let got = distances(&kernel, &store, &pairs);
                assert_eq!(got, reference, "{} round {round}", kernel.name());
            }
        }
    }

    #[test]
    fn batches_with_wildly_unequal_text_lengths_freeze_correctly() {
        let mut rng = Rng(5);
        let seqs: Vec<Vec<u8>> = [1usize, 40, 90, 130, 64, 65]
            .iter()
            .map(|&n| (0..n).map(|_| (rng.next() % 4) as u8).collect())
            .collect();
        let store = store_from(&seqs);
        // All patterns same word count (w = 1 or 2) but very different
        // text lengths, so they land in one batch and freeze at different
        // columns.
        let pairs = vec![(0, 1), (0, 3), (1, 2), (1, 3), (4, 5), (4, 3), (5, 3)];
        let reference = distances(&WideKernel::portable(), &store, &pairs);
        for kernel in engines() {
            assert_eq!(distances(&kernel, &store, &pairs), reference, "{}", kernel.name());
        }
    }

    #[test]
    fn detect_never_panics_and_names_are_stable() {
        let k = WideKernel::detect();
        assert!(k.name().starts_with("wide-"));
        assert_eq!(WideKernel::portable().name(), "wide-portable");
    }
}
