//! The subset-pair overlapper (paper §II-B).
//!
//! Each reference read subset is indexed by a suffix array; every query read
//! is decomposed into k-mers that are looked up in the index. Reference reads
//! collecting enough k-mer hits on a consistent diagonal become candidates
//! and are verified with banded Needleman–Wunsch. Overlaps that meet the
//! minimum length and identity thresholds are recorded.

use crate::error::AlignError;
use crate::kernel::{AlignKernel, KernelKind, KernelScratch, VerifyParams, VerifyReq};
use crate::nw::{band_for_error_rate, AlignmentSummary, NwConfig};
use crate::overlap::{Overlap, OverlapKind};
use crate::suffix::SuffixArray;
use fc_exec::Pool;
use fc_obs::Recorder;
use fc_seq::{ReadId, ReadStore};
use std::collections::HashMap;

/// Identity-percentage histogram bounds: the interesting range is 50–100%,
/// the default power-of-two buckets would lump it all together.
const IDENTITY_PCT_BOUNDS: &[u64] = &[50, 60, 70, 80, 85, 90, 92, 94, 96, 98, 99, 100];

/// Parameters of the overlap stage. The paper's evaluation uses a minimum
/// overlap length of 50 bp and minimum identity of 90 % (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapConfig {
    /// Seed k-mer length.
    pub k: usize,
    /// Distance between sampled seed positions on the query read.
    pub seed_step: usize,
    /// Minimum k-mer hits on one diagonal cluster before a candidate is
    /// aligned (the paper's "number of k-mer hits greater than a specified
    /// threshold").
    pub min_kmer_hits: usize,
    /// Minimum verified alignment length (columns) for an overlap.
    pub min_overlap_len: usize,
    /// Minimum verified alignment identity for an overlap.
    pub min_identity: f64,
    /// Aligner scoring/banding.
    pub nw: NwConfig,
    /// Which verification kernel runs the candidates (all kinds produce
    /// bit-identical overlaps; see [`crate::kernel`]).
    pub kernel: KernelKind,
    /// When set, each candidate is verified in a band sized for its own
    /// overlap length via [`band_for_error_rate`] (memoised per length)
    /// instead of the fixed `nw.band`. `None` (the default) preserves the
    /// fixed-band outputs exactly.
    pub band_error_rate: Option<f64>,
}

impl Default for OverlapConfig {
    fn default() -> OverlapConfig {
        OverlapConfig {
            k: 15,
            seed_step: 3,
            min_kmer_hits: 2,
            min_overlap_len: 50,
            min_identity: 0.90,
            nw: NwConfig::default(),
            kernel: KernelKind::default(),
            band_error_rate: None,
        }
    }
}

impl OverlapConfig {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), AlignError> {
        if self.k == 0 || self.k > 32 {
            return Err(AlignError::Config {
                parameter: "k",
                message: format!("must be in 1..=32, got {}", self.k),
            });
        }
        if self.seed_step == 0 {
            return Err(AlignError::Config {
                parameter: "seed_step",
                message: "must be > 0".to_string(),
            });
        }
        if self.min_kmer_hits == 0 {
            return Err(AlignError::Config {
                parameter: "min_kmer_hits",
                message: "must be > 0".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.min_identity) {
            return Err(AlignError::Config {
                parameter: "min_identity",
                message: format!("must be in [0,1], got {}", self.min_identity),
            });
        }
        if let Some(rate) = self.band_error_rate {
            if !rate.is_finite() || !(rate > 0.0 && rate < 1.0) {
                return Err(AlignError::Config {
                    parameter: "band_error_rate",
                    message: format!("must be in (0,1), got {rate}"),
                });
            }
        }
        Ok(())
    }
}

/// Work counters for one subset-pair comparison. These feed the simulated
/// cluster's cost model (fc-dist) and the micro benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Query k-mer lookups performed.
    pub kmer_lookups: u64,
    /// Total suffix-array hits returned.
    pub kmer_hits: u64,
    /// Candidate pairs that reached the aligner.
    pub candidates: u64,
    /// Approximate DP cells computed by the aligner.
    pub nw_cells: u64,
    /// Overlaps that passed the thresholds.
    pub overlaps: u64,
    /// Candidates rejected by a bit-parallel prefilter bound without
    /// running scalar NW (kernel-dependent; zero for the scalar kernel).
    pub prefilter_rejected: u64,
    /// Candidates that survived the prefilter and were re-verified by
    /// band-shrunk scalar NW (kernel-dependent).
    pub prefilter_verified: u64,
    /// Candidates resolved by the exact-match shortcut (kernel-dependent).
    pub exact_hits: u64,
    /// Distance computations staged into SIMD batch lanes
    /// (kernel-dependent; the count is CPU-independent — it tallies staged
    /// requests, not vector width).
    pub wide_lanes: u64,
}

impl PairStats {
    /// Accumulates another pair's counters into this one, saturating at
    /// `u64::MAX` — merged totals over huge runs must degrade to a pinned
    /// counter, never wrap around to a small lie.
    pub fn merge(&mut self, other: &PairStats) {
        self.kmer_lookups = self.kmer_lookups.saturating_add(other.kmer_lookups);
        self.kmer_hits = self.kmer_hits.saturating_add(other.kmer_hits);
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.nw_cells = self.nw_cells.saturating_add(other.nw_cells);
        self.overlaps = self.overlaps.saturating_add(other.overlaps);
        self.prefilter_rejected = self.prefilter_rejected.saturating_add(other.prefilter_rejected);
        self.prefilter_verified = self.prefilter_verified.saturating_add(other.prefilter_verified);
        self.exact_hits = self.exact_hits.saturating_add(other.exact_hits);
        self.wide_lanes = self.wide_lanes.saturating_add(other.wide_lanes);
    }
}

impl fc_ckpt::Codec for PairStats {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u64(self.kmer_lookups);
        w.put_u64(self.kmer_hits);
        w.put_u64(self.candidates);
        w.put_u64(self.nw_cells);
        w.put_u64(self.overlaps);
        w.put_u64(self.prefilter_rejected);
        w.put_u64(self.prefilter_verified);
        w.put_u64(self.exact_hits);
        w.put_u64(self.wide_lanes);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<PairStats, fc_ckpt::CkptError> {
        Ok(PairStats {
            kmer_lookups: r.u64()?,
            kmer_hits: r.u64()?,
            candidates: r.u64()?,
            nw_cells: r.u64()?,
            overlaps: r.u64()?,
            prefilter_rejected: r.u64()?,
            prefilter_verified: r.u64()?,
            exact_hits: r.u64()?,
            wide_lanes: r.u64()?,
        })
    }
}

/// Reusable per-worker buffers for the overlapper's hot path: the diagonal
/// vote map and its flattened/sorted view, the suffix-array hit buffer, the
/// candidate list, the verification-request batch and its verdicts, the
/// kernel's own buffers, and the per-length band memo. One value per worker
/// thread (see [`Overlapper::overlap_all_with`]) eliminates the per-read and
/// per-verification allocation churn without any cross-thread state.
#[derive(Debug, Default)]
pub struct AlignScratch {
    votes: HashMap<(ReadId, i64), u32>,
    flat: Vec<(ReadId, i64, u32)>,
    hits: Vec<(ReadId, u32)>,
    candidates: Vec<(ReadId, i64)>,
    reqs: Vec<VerifyReq>,
    verdicts: Vec<Option<AlignmentSummary>>,
    kernel: KernelScratch,
    /// `band_memo[len]` caches `band_for_error_rate(len, rate)` (0 =
    /// uncomputed; real bands are >= 4) so the sqrt/ceil runs once per
    /// distinct overlap length instead of once per candidate.
    band_memo: Vec<u32>,
}

/// Pairwise read overlapper over a preprocessed [`ReadStore`].
pub struct Overlapper<'a> {
    store: &'a ReadStore,
    config: OverlapConfig,
    kernel: Box<dyn AlignKernel>,
}

impl<'a> Overlapper<'a> {
    /// Creates an overlapper; fails on invalid configuration. The
    /// verification kernel is built here, once — runtime dispatch flows
    /// from configuration, never from ambient state in the hot path.
    pub fn new(store: &'a ReadStore, config: OverlapConfig) -> Result<Overlapper<'a>, AlignError> {
        config.validate()?;
        let kernel = config.kernel.build();
        Ok(Overlapper {
            store,
            config,
            kernel,
        })
    }

    /// The active verification kernel's name (`scalar`, `bitparallel`,
    /// `wide-avx2`, …) for logs and reports.
    pub fn kernel_name(&self) -> &'static str {
        self.kernel.name()
    }

    /// The configuration in use.
    pub fn config(&self) -> &OverlapConfig {
        &self.config
    }

    /// Builds the suffix-array index for one reference subset.
    pub fn index_subset(&self, reference: &[ReadId]) -> SuffixArray {
        let entries: Vec<_> = reference
            .iter()
            .map(|&id| (id, &self.store.get(id).seq))
            .collect();
        SuffixArray::build(&entries)
    }

    /// Finds overlaps between `query` reads and an indexed reference subset.
    ///
    /// When `dedup_self` is true (self subset pairs), only pairs with
    /// `query id < reference id` are evaluated so each unordered pair is
    /// considered once across the whole run.
    pub fn overlap_pair(
        &self,
        query: &[ReadId],
        index: &SuffixArray,
        dedup_self: bool,
    ) -> (Vec<Overlap>, PairStats) {
        self.overlap_pair_with(query, index, dedup_self, &mut AlignScratch::default())
    }

    /// [`Overlapper::overlap_pair`] with caller-provided scratch buffers —
    /// the zero-allocation path used by the parallel fan-out, where each
    /// worker thread owns one [`AlignScratch`] for its whole task stream.
    ///
    /// Seeding and geometry run per query read, accumulating one
    /// [`VerifyReq`] batch for the whole subset pair; the configured
    /// [`AlignKernel`] then verifies the batch in one call (giving the SIMD
    /// kernel cross-read candidates to fill its lanes with), and overlaps
    /// are emitted in request order — exactly the order the old inline
    /// verification produced.
    pub fn overlap_pair_with(
        &self,
        query: &[ReadId],
        index: &SuffixArray,
        dedup_self: bool,
        scratch: &mut AlignScratch,
    ) -> (Vec<Overlap>, PairStats) {
        let mut overlaps = Vec::new();
        let mut stats = PairStats::default();
        scratch.reqs.clear();
        for &q in query {
            self.overlap_one(q, index, dedup_self, &mut stats, scratch);
        }
        let params = VerifyParams {
            nw: self.config.nw,
            min_overlap_len: self.config.min_overlap_len,
            min_identity: self.config.min_identity,
        };
        self.kernel.verify_batch(
            self.store,
            &params,
            &scratch.reqs,
            &mut scratch.kernel,
            &mut stats,
            &mut scratch.verdicts,
        );
        for (req, verdict) in scratch.reqs.iter().zip(&scratch.verdicts) {
            if let Some(summary) = verdict {
                stats.overlaps += 1;
                overlaps.push(Overlap {
                    a: req.a,
                    b: req.b,
                    kind: req.kind,
                    shift: req.shift,
                    len: summary.columns,
                    identity: summary.identity(),
                });
            }
        }
        (overlaps, stats)
    }

    /// Runs the full all-subset-pairs overlap computation, mirroring the
    /// paper's parallel read alignment: subsets are compared pairwise
    /// (including each subset against itself) and results concatenated.
    /// Returns the overlaps plus the per-pair stats in `(i, j, stats)` form.
    pub fn overlap_all(
        &self,
        subsets: &[Vec<ReadId>],
    ) -> (Vec<Overlap>, Vec<(usize, usize, PairStats)>) {
        self.overlap_all_with(subsets, &Pool::serial())
    }

    /// [`Overlapper::overlap_all`] over a work pool: the `s(s+1)/2`
    /// subset-pair tasks run concurrently (paper §II-B's parallel
    /// alignment).
    ///
    /// Each reference subset's suffix array is built exactly once and shared
    /// read-only across its column of tasks; per-task results are merged in
    /// the serial loop's canonical `(j, i ≤ j)` order, so the output is
    /// bit-identical to [`Overlapper::overlap_all`] at any thread count.
    pub fn overlap_all_with(
        &self,
        subsets: &[Vec<ReadId>],
        pool: &Pool,
    ) -> (Vec<Overlap>, Vec<(usize, usize, PairStats)>) {
        self.overlap_all_obs(subsets, pool, &Recorder::disabled())
    }

    /// [`Overlapper::overlap_all_with`] with alignment metrics recorded
    /// into `rec`: aggregate k-mer/candidate/verification counters
    /// (`align.*`), overlap length and identity histograms, and the
    /// scheduling-dependent scratch-reuse count
    /// (`sched.align.scratch_reuses`). The overlaps returned are identical
    /// to the uninstrumented call; metric aggregation happens after the
    /// canonical merge, outside the hot per-pair tasks.
    pub fn overlap_all_obs(
        &self,
        subsets: &[Vec<ReadId>],
        pool: &Pool,
        rec: &Recorder,
    ) -> (Vec<Overlap>, Vec<(usize, usize, PairStats)>) {
        let _span = rec.span_args(
            "align",
            "align.overlap_all",
            &[("subsets", subsets.len() as i64)],
        );
        let indexes: Vec<SuffixArray> =
            pool.map_obs(subsets.len(), rec, |j| self.index_subset(&subsets[j]));
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(subsets.len().pow(2) / 2 + 1);
        for j in 0..subsets.len() {
            for i in 0..=j {
                pairs.push((i, j));
            }
        }
        // The bool rides along with the scratch to count how often a task
        // found warm buffers: false exactly once per created scratch.
        let results = pool.map_with_obs(
            pairs.len(),
            rec,
            || (AlignScratch::default(), false),
            |t, scratch| {
                let (i, j) = pairs[t];
                let reused = scratch.1;
                scratch.1 = true;
                let out = self.overlap_pair_with(&subsets[i], &indexes[j], i == j, &mut scratch.0);
                (out, reused)
            },
        );
        self.merge_pair_results(pairs.into_iter().zip(results), rec)
    }

    /// Canonical-order merge and metric aggregation shared by
    /// [`Overlapper::overlap_all_obs`] and the out-of-core spilled
    /// alignment: consumes per-pair results **in the serial `(j, i ≤ j)`
    /// pair order** (each with the `reused`-scratch flag) and produces the
    /// flat overlap list, the per-pair stats, and exactly the `align.*`
    /// aggregate metrics the in-core path records — one implementation, so
    /// the two paths cannot drift apart.
    pub fn merge_pair_results(
        &self,
        results: impl IntoIterator<Item = ((usize, usize), ((Vec<Overlap>, PairStats), bool))>,
        rec: &Recorder,
    ) -> (Vec<Overlap>, Vec<(usize, usize, PairStats)>) {
        let mut all = Vec::new();
        let mut pair_stats = Vec::new();
        let mut total = PairStats::default();
        let mut scratch_reuses = 0u64;
        for ((i, j), ((mut found, stats), reused)) in results {
            if rec.is_enabled() {
                total.merge(&stats);
                if reused {
                    scratch_reuses += 1;
                }
                rec.observe("align.pair_overlaps", stats.overlaps);
                for overlap in &found {
                    rec.observe("align.overlap_len", overlap.len as u64);
                    rec.observe_with(
                        "align.identity_pct",
                        (overlap.identity * 100.0) as u64,
                        IDENTITY_PCT_BOUNDS,
                    );
                }
            }
            all.append(&mut found);
            pair_stats.push((i, j, stats));
        }
        if rec.is_enabled() {
            rec.add("align.kmer_lookups", total.kmer_lookups);
            rec.add("align.kmer_hits", total.kmer_hits);
            rec.add("align.candidates", total.candidates);
            rec.add("align.candidates_verified", total.overlaps);
            rec.add(
                "align.candidates_rejected",
                total.candidates.saturating_sub(total.overlaps),
            );
            rec.add("align.nw_cells", total.nw_cells);
            // Kernel-dependent counters (see `fc_obs::KERNEL_PREFIXES`):
            // excluded from logical snapshots because they vary with
            // `--align-kernel` while the overlaps stay bit-identical.
            rec.add("align.prefilter.rejected", total.prefilter_rejected);
            rec.add("align.prefilter.verified", total.prefilter_verified);
            rec.add("align.kernel.exact_hits", total.exact_hits);
            rec.add("align.kernel.wide_lanes", total.wide_lanes);
            rec.add("sched.align.scratch_reuses", scratch_reuses);
            rec.gauge("align.band", self.config.nw.band as i64);
        }
        (all, pair_stats)
    }

    /// Runs only the seeding/geometry stage over every subset pair,
    /// returning the full [`VerifyReq`] batch in the canonical serial
    /// `(j, i ≤ j)` order. The geometry stage is kernel-independent, so
    /// this is exactly the work list any configured kernel would verify;
    /// benchmarks use it to time [`Overlapper::verify_requests`] in
    /// isolation from seeding and voting.
    pub fn gather_requests(&self, subsets: &[Vec<ReadId>]) -> Vec<VerifyReq> {
        let mut scratch = AlignScratch::default();
        let mut stats = PairStats::default();
        let mut reqs = Vec::new();
        for j in 0..subsets.len() {
            let index = self.index_subset(&subsets[j]);
            for i in 0..=j {
                scratch.reqs.clear();
                for &q in &subsets[i] {
                    self.overlap_one(q, &index, i == j, &mut stats, &mut scratch);
                }
                reqs.extend_from_slice(&scratch.reqs);
            }
        }
        reqs
    }

    /// Verifies a request batch with this overlapper's configured kernel,
    /// writing one verdict per request into `out` (cleared first). This is
    /// the alignment verification phase in isolation — the part
    /// `--align-kernel` dispatches — exposed so the kernel benchmark can
    /// time it without seeding noise.
    pub fn verify_requests(
        &self,
        reqs: &[VerifyReq],
        scratch: &mut KernelScratch,
        stats: &mut PairStats,
        out: &mut Vec<Option<AlignmentSummary>>,
    ) {
        let params = VerifyParams {
            nw: self.config.nw,
            min_overlap_len: self.config.min_overlap_len,
            min_identity: self.config.min_identity,
        };
        self.kernel
            .verify_batch(self.store, &params, reqs, scratch, stats, out);
    }

    /// Seeds, votes and classifies the candidates of one query read,
    /// pushing a [`VerifyReq`] per geometry-valid candidate onto
    /// `scratch.reqs` (verification happens later, batched per subset
    /// pair).
    fn overlap_one(
        &self,
        q: ReadId,
        index: &SuffixArray,
        dedup_self: bool,
        stats: &mut PairStats,
        scratch: &mut AlignScratch,
    ) {
        let k = self.config.k;
        let query_seq = &self.store.get(q).seq;
        if query_seq.len() < k {
            return;
        }
        let AlignScratch {
            votes,
            flat,
            hits,
            candidates,
            reqs,
            band_memo,
            ..
        } = scratch;
        // Vote per (reference read, diagonal).
        votes.clear();
        let mut pos = 0usize;
        while pos + k <= query_seq.len() {
            if let Some(kmer) = query_seq.kmer_u64(pos, k) {
                stats.kmer_lookups += 1;
                index.find_kmer_into(kmer, k, hits);
                for &(r, r_off) in hits.iter() {
                    stats.kmer_hits += 1;
                    if r == q {
                        continue;
                    }
                    if dedup_self && r.0 <= q.0 {
                        continue;
                    }
                    // Never overlap a read with its own reverse complement:
                    // those pairs are artifacts of the RC augmentation.
                    if self.store.mate(q) == Some(r) {
                        continue;
                    }
                    let diag = pos as i64 - r_off as i64;
                    *votes.entry((r, diag)).or_insert(0) += 1;
                }
            }
            pos += self.config.seed_step;
        }

        // Cluster diagonals per reference read within the NW band. The vote
        // map is flattened into one (read, diag, count) list sorted by
        // (read, diag); each read's group is then its diag-ascending
        // histogram, swept with a sliding window of width `band`.
        flat.clear();
        flat.extend(votes.iter().map(|(&(r, d), &c)| (r, d, c)));
        flat.sort_unstable();
        candidates.clear();
        let band = self.config.nw.band as i64;
        let mut g = 0usize;
        while g < flat.len() {
            let r = flat[g].0;
            let mut h = g;
            while h < flat.len() && flat[h].0 == r {
                h += 1;
            }
            let diags = &flat[g..h];
            let mut best_votes = 0u32;
            let mut best_diag = 0i64;
            let mut lo = 0usize;
            let mut window_votes = 0u32;
            let mut window_weighted = 0i64;
            for hi in 0..diags.len() {
                window_votes += diags[hi].2;
                window_weighted += diags[hi].1 * diags[hi].2 as i64;
                while diags[hi].1 - diags[lo].1 > band {
                    window_votes -= diags[lo].2;
                    window_weighted -= diags[lo].1 * diags[lo].2 as i64;
                    lo += 1;
                }
                if window_votes > best_votes {
                    best_votes = window_votes;
                    best_diag = window_weighted / window_votes as i64;
                }
            }
            if best_votes as usize >= self.config.min_kmer_hits {
                candidates.push((r, best_diag));
            }
            g = h;
        }
        // Groups are visited in ascending read order with one candidate per
        // read, so `candidates` is already in the (r, d) order the map-based
        // implementation sorted into explicitly.
        for ci in 0..candidates.len() {
            let (r, diag) = candidates[ci];
            stats.candidates += 1;
            if let Some(req) = self.classify_candidate(q, r, diag, band_memo) {
                // Work accounting happens at the geometry stage with the
                // request's band, so `nw_cells` is identical whichever
                // kernel verifies the batch.
                let rows = (req.a_range.1 - req.a_range.0) as u64;
                stats.nw_cells += rows * (2 * req.band as u64 + 1);
                reqs.push(req);
            }
        }
    }

    /// The band half-width for a candidate whose outer-read overlap spans
    /// `rows` bases: the configured fixed band, or (under
    /// `band_error_rate`) the per-length adaptive band, memoised in
    /// `band_memo`.
    fn band_for(&self, rows: usize, band_memo: &mut Vec<u32>) -> usize {
        let Some(rate) = self.config.band_error_rate else {
            return self.config.nw.band;
        };
        if rows >= band_memo.len() {
            band_memo.resize(rows + 1, 0);
        }
        if band_memo[rows] == 0 {
            band_memo[rows] = band_for_error_rate(rows, rate) as u32;
        }
        band_memo[rows] as usize
    }

    /// Classifies a candidate's overlap geometry from its seed diagonal,
    /// returning the verification request (or `None` when the diagonal
    /// implies no overlap).
    fn classify_candidate(
        &self,
        q: ReadId,
        r: ReadId,
        diag: i64,
        band_memo: &mut Vec<u32>,
    ) -> Option<VerifyReq> {
        let qs = &self.store.get(q).seq;
        let rs = &self.store.get(r).seq;
        let (len_q, len_r) = (qs.len() as i64, rs.len() as i64);

        // Geometry from the diagonal: r's origin sits `diag` bases right of
        // q's origin when diag >= 0.
        let (a, b, shift, kind, a_range, b_range) = if diag >= 0 {
            let d = diag;
            let ov_q = len_q - d; // q bases expected inside the overlap
            if ov_q <= 0 {
                return None;
            }
            if len_r <= ov_q {
                // r fully inside q.
                (
                    q,
                    r,
                    d as u32,
                    OverlapKind::ContainsB,
                    (d as usize, (d + len_r).min(len_q) as usize),
                    (0usize, len_r as usize),
                )
            } else {
                (
                    q,
                    r,
                    d as u32,
                    OverlapKind::SuffixPrefix,
                    (d as usize, len_q as usize),
                    (0usize, ov_q as usize),
                )
            }
        } else {
            let e = -diag;
            let ov_r = len_r - e; // r bases expected inside the overlap
            if ov_r <= 0 {
                return None;
            }
            if len_q <= ov_r {
                // q fully inside r.
                (
                    q,
                    r,
                    e as u32,
                    OverlapKind::ContainedInB,
                    (0usize, len_q as usize),
                    (e as usize, (e + len_q).min(len_r) as usize),
                )
            } else {
                // Dovetail with r first: suffix of r matches prefix of q.
                (
                    r,
                    q,
                    e as u32,
                    OverlapKind::SuffixPrefix,
                    (e as usize, len_r as usize),
                    (0usize, ov_r as usize),
                )
            }
        };

        let band = self.band_for(a_range.1 - a_range.0, band_memo);
        Some(VerifyReq {
            a,
            b,
            kind,
            shift,
            a_range,
            b_range,
            band,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::{DnaString, Read};
    use rand_like::SimpleRng;

    /// Minimal deterministic RNG for test-genome generation (avoids pulling
    /// `rand` into this crate just for tests).
    mod rand_like {
        pub struct SimpleRng(u64);
        impl SimpleRng {
            pub fn new(seed: u64) -> SimpleRng {
                SimpleRng(seed.max(1))
            }
            pub fn next(&mut self) -> u64 {
                // xorshift64*
                let mut x = self.0;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.0 = x;
                x.wrapping_mul(0x2545F4914F6CDD1D)
            }
        }
    }

    fn random_genome(len: usize, seed: u64) -> DnaString {
        let mut rng = SimpleRng::new(seed);
        (0..len)
            .map(|_| fc_seq::Base::from_code((rng.next() % 4) as u8))
            .collect()
    }

    /// Tiles `genome` with reads of `read_len` every `stride` bases.
    fn tiled_store(genome: &DnaString, read_len: usize, stride: usize) -> ReadStore {
        let mut reads = Vec::new();
        let mut start = 0;
        while start + read_len <= genome.len() {
            reads.push(Read::new(
                format!("r{start}"),
                genome.slice(start, start + read_len),
            ));
            start += stride;
        }
        // No trimming needed (FASTA reads), but preprocess adds the RCs.
        ReadStore::preprocess(
            &reads,
            &fc_seq::TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn test_config() -> OverlapConfig {
        OverlapConfig {
            min_overlap_len: 30,
            ..OverlapConfig::default()
        }
    }

    #[test]
    fn finds_dovetails_along_a_tiling() {
        let genome = random_genome(600, 7);
        let store = tiled_store(&genome, 100, 50);
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let subsets = store.split_subsets(1);
        let (overlaps, _) = overlapper.overlap_all(&subsets);
        assert!(!overlaps.is_empty());
        // Consecutive forward reads overlap by 50 bp: read i (node 2i) and
        // read i+1 (node 2(i+1)) must produce a SuffixPrefix overlap.
        let n_forward = store.len() / 2;
        for i in 0..n_forward - 1 {
            let a = ReadId(2 * i as u32);
            let b = ReadId(2 * (i + 1) as u32);
            let found = overlaps.iter().any(|o| {
                o.kind == OverlapKind::SuffixPrefix
                    && ((o.a == a && o.b == b) || (o.a == b && o.b == a))
            });
            assert!(
                found,
                "missing dovetail between forward reads {i} and {}",
                i + 1
            );
        }
        // Every reported dovetail must meet the thresholds.
        for o in &overlaps {
            assert!(o.len >= 30);
            assert!(o.identity >= 0.90);
        }
    }

    #[test]
    fn detects_containment() {
        let genome = random_genome(200, 11);
        let long = Read::new("long", genome.slice(0, 150));
        let short = Read::new("short", genome.slice(30, 110));
        let store = ReadStore::preprocess(
            &[long, short],
            &fc_seq::TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let (overlaps, _) = overlapper.overlap_all(&store.split_subsets(1));
        let containment = overlaps
            .iter()
            .find(|o| o.contained().is_some())
            .expect("containment overlap not found");
        // The short read (source index 1 -> stored ids 2,3) is contained.
        let inner = containment.contained().unwrap();
        assert!(
            inner.0 >= 2,
            "the short read should be the contained one: {containment:?}"
        );
    }

    #[test]
    fn no_overlaps_between_unrelated_sequences() {
        let a = random_genome(120, 21);
        let b = random_genome(120, 9999);
        let store = ReadStore::preprocess(
            &[Read::new("a", a), Read::new("b", b)],
            &fc_seq::TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let (overlaps, _) = overlapper.overlap_all(&store.split_subsets(1));
        assert!(overlaps.is_empty(), "spurious overlaps: {overlaps:?}");
    }

    #[test]
    fn subset_split_finds_same_overlaps_as_single_subset() {
        let genome = random_genome(800, 5);
        let store = tiled_store(&genome, 100, 40);
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let (mut one, _) = overlapper.overlap_all(&store.split_subsets(1));
        let (mut four, _) = overlapper.overlap_all(&store.split_subsets(4));
        let key = |o: &Overlap| (o.a.0, o.b.0, o.shift, o.len);
        one.sort_by_key(key);
        four.sort_by_key(key);
        let one_keys: Vec<_> = one.iter().map(key).collect();
        let four_keys: Vec<_> = four.iter().map(key).collect();
        assert_eq!(one_keys, four_keys);
    }

    #[test]
    fn tolerates_substitution_errors() {
        let genome = random_genome(300, 13);
        let mut read_a = genome.slice(0, 120);
        let read_b = genome.slice(60, 180);
        // Two substitutions inside the 60 bp overlap: identity 58/60 > 0.9.
        read_a.set(70, read_a.get(70).complement());
        read_a.set(90, read_a.get(90).complement());
        let store = ReadStore::preprocess(
            &[Read::new("a", read_a), Read::new("b", read_b)],
            &fc_seq::TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let (overlaps, _) = overlapper.overlap_all(&store.split_subsets(1));
        assert!(
            overlaps
                .iter()
                .any(|o| o.kind == OverlapKind::SuffixPrefix && o.identity < 1.0),
            "imperfect dovetail not found: {overlaps:?}"
        );
    }

    #[test]
    fn pair_stats_merge_saturates_instead_of_wrapping() {
        let mut a = PairStats {
            kmer_lookups: u64::MAX - 1,
            kmer_hits: u64::MAX,
            candidates: 5,
            nw_cells: u64::MAX - 10,
            overlaps: 0,
            prefilter_rejected: u64::MAX - 1,
            ..PairStats::default()
        };
        let b = PairStats {
            kmer_lookups: 7,
            kmer_hits: 1,
            candidates: 3,
            nw_cells: 100,
            overlaps: 2,
            prefilter_rejected: 5,
            exact_hits: 4,
            ..PairStats::default()
        };
        a.merge(&b);
        assert_eq!(a.kmer_lookups, u64::MAX);
        assert_eq!(a.kmer_hits, u64::MAX);
        assert_eq!(a.candidates, 8);
        assert_eq!(a.nw_cells, u64::MAX);
        assert_eq!(a.overlaps, 2);
        assert_eq!(a.prefilter_rejected, u64::MAX);
        assert_eq!(a.exact_hits, 4);
    }

    #[test]
    fn pooled_overlap_all_is_bit_identical_to_serial() {
        let genome = random_genome(900, 17);
        let store = tiled_store(&genome, 100, 35);
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let subsets = store.split_subsets(5);
        let serial = overlapper.overlap_all(&subsets);
        for threads in [1usize, 2, 4, 8] {
            let pooled = overlapper.overlap_all_with(&subsets, &Pool::new(threads));
            // No sorting: the merge itself must reproduce the serial order.
            assert_eq!(pooled.0, serial.0, "overlaps differ at {threads} threads");
            assert_eq!(pooled.1, serial.1, "pair stats differ at {threads} threads");
        }
    }

    #[test]
    fn obs_alignment_metrics_are_thread_invariant() {
        let genome = random_genome(900, 17);
        let store = tiled_store(&genome, 100, 35);
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let subsets = store.split_subsets(5);
        let baseline = {
            let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
            let out = overlapper.overlap_all_obs(&subsets, &Pool::serial(), &rec);
            assert_eq!(out, overlapper.overlap_all(&subsets));
            rec.snapshot_json()
        };
        assert!(baseline.contains("align.candidates"));
        assert!(baseline.contains("align.overlap_len"));
        for threads in [2usize, 4, 8] {
            let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
            overlapper.overlap_all_obs(&subsets, &Pool::new(threads), &rec);
            assert_eq!(
                rec.snapshot_json(),
                baseline,
                "metric snapshot differs at {threads} threads"
            );
        }
    }

    #[test]
    fn obs_verified_plus_rejected_equals_candidates() {
        let genome = random_genome(600, 5);
        let store = tiled_store(&genome, 100, 40);
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let subsets = store.split_subsets(3);
        let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
        overlapper.overlap_all_obs(&subsets, &Pool::new(4), &rec);
        let snapshot = rec.snapshot();
        let get = |name| snapshot.counters.get(name).copied().unwrap_or(0);
        assert_eq!(
            get("align.candidates_verified") + get("align.candidates_rejected"),
            get("align.candidates")
        );
        assert!(get("align.kmer_lookups") > 0);
    }

    #[test]
    fn scratch_reuse_across_pairs_matches_fresh_scratch() {
        let genome = random_genome(500, 3);
        let store = tiled_store(&genome, 100, 50);
        let overlapper = Overlapper::new(&store, test_config()).unwrap();
        let subsets = store.split_subsets(3);
        let index = overlapper.index_subset(&subsets[0]);
        let mut reused = AlignScratch::default();
        for subset in &subsets {
            let fresh = overlapper.overlap_pair(subset, &index, false);
            let with_reuse = overlapper.overlap_pair_with(subset, &index, false, &mut reused);
            assert_eq!(fresh, with_reuse);
        }
    }

    #[test]
    fn config_validation() {
        assert!(OverlapConfig {
            k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OverlapConfig {
            k: 33,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OverlapConfig {
            seed_step: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OverlapConfig {
            min_identity: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OverlapConfig::default().validate().is_ok());
    }

    /// Every kernel kind must produce bit-identical overlaps, logical
    /// (kernel-independent) pair stats, and byte-identical logical metric
    /// snapshots — at every thread count. This is the dispatch-level
    /// counterpart of the per-request differential tests in
    /// [`crate::kernel`].
    #[test]
    fn all_kernel_kinds_produce_bit_identical_results() {
        let genome = random_genome(900, 23);
        let store = tiled_store(&genome, 100, 35);
        let subsets = store.split_subsets(4);
        let logical = |s: &PairStats| PairStats {
            prefilter_rejected: 0,
            prefilter_verified: 0,
            exact_hits: 0,
            wide_lanes: 0,
            ..*s
        };
        let (base_overlaps, base_stats, base_snapshot) = {
            let config = OverlapConfig {
                kernel: KernelKind::Scalar,
                ..test_config()
            };
            let overlapper = Overlapper::new(&store, config).unwrap();
            let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
            let (o, s) = overlapper.overlap_all_obs(&subsets, &Pool::serial(), &rec);
            (o, s, rec.snapshot_json())
        };
        assert!(!base_overlaps.is_empty());
        for kind in [KernelKind::BitParallel, KernelKind::Auto] {
            let config = OverlapConfig {
                kernel: kind,
                ..test_config()
            };
            let overlapper = Overlapper::new(&store, config).unwrap();
            for threads in [1usize, 4] {
                let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
                let (overlaps, stats) =
                    overlapper.overlap_all_obs(&subsets, &Pool::new(threads), &rec);
                assert_eq!(
                    overlaps,
                    base_overlaps,
                    "overlaps differ for {} at {threads} threads",
                    kind.as_str()
                );
                for ((i, j, s), (bi, bj, bs)) in stats.iter().zip(&base_stats) {
                    assert_eq!((i, j), (bi, bj));
                    assert_eq!(
                        logical(s),
                        logical(bs),
                        "logical stats differ for {} pair ({i},{j})",
                        kind.as_str()
                    );
                }
                assert_eq!(
                    rec.snapshot_json(),
                    base_snapshot,
                    "logical metric snapshot differs for {} at {threads} threads",
                    kind.as_str()
                );
            }
        }
    }

    /// The bit-parallel kernels actually take their shortcuts on this
    /// workload (the counters are nonzero), while the scalar kernel's
    /// kernel-dependent counters stay zero.
    #[test]
    fn prefilter_counters_reflect_kernel_work() {
        let genome = random_genome(900, 23);
        let store = tiled_store(&genome, 100, 35);
        let subsets = store.split_subsets(2);
        let totals = |kind: KernelKind| {
            let config = OverlapConfig {
                kernel: kind,
                ..test_config()
            };
            let overlapper = Overlapper::new(&store, config).unwrap();
            let (_, stats) = overlapper.overlap_all(&subsets);
            let mut total = PairStats::default();
            for (_, _, s) in &stats {
                total.merge(s);
            }
            total
        };
        let scalar = totals(KernelKind::Scalar);
        assert_eq!(scalar.prefilter_rejected, 0);
        assert_eq!(scalar.prefilter_verified, 0);
        assert_eq!(scalar.exact_hits, 0);
        assert_eq!(scalar.wide_lanes, 0);
        let bitparallel = totals(KernelKind::BitParallel);
        assert!(
            bitparallel.prefilter_rejected + bitparallel.prefilter_verified
                + bitparallel.exact_hits
                > 0,
            "prefilter never engaged: {bitparallel:?}"
        );
        let auto = totals(KernelKind::Auto);
        assert_eq!(
            PairStats {
                wide_lanes: 0,
                ..auto
            },
            PairStats {
                wide_lanes: 0,
                ..bitparallel
            },
            "wide and portable bit-parallel pipelines must count identically"
        );
    }

    /// Adaptive banding (`band_error_rate`) still finds the tiling's
    /// dovetails, and its per-length memo produces the same overlaps as a
    /// cold scratch every time.
    #[test]
    fn adaptive_banding_finds_dovetails_and_memoises() {
        let genome = random_genome(600, 7);
        let store = tiled_store(&genome, 100, 50);
        let config = OverlapConfig {
            band_error_rate: Some(0.05),
            ..test_config()
        };
        let overlapper = Overlapper::new(&store, config).unwrap();
        let subsets = store.split_subsets(1);
        let (overlaps, _) = overlapper.overlap_all(&subsets);
        assert!(overlaps
            .iter()
            .any(|o| o.kind == OverlapKind::SuffixPrefix && o.len >= 30));
        // Warm memo (same scratch across repeated pairs) changes nothing.
        let index = overlapper.index_subset(&subsets[0]);
        let mut warm = AlignScratch::default();
        for _ in 0..3 {
            let fresh = overlapper.overlap_pair(&subsets[0], &index, true);
            let reused = overlapper.overlap_pair_with(&subsets[0], &index, true, &mut warm);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn band_error_rate_validation() {
        for bad in [0.0f64, 1.0, -0.1, f64::NAN, f64::INFINITY] {
            assert!(
                OverlapConfig {
                    band_error_rate: Some(bad),
                    ..Default::default()
                }
                .validate()
                .is_err(),
                "rate {bad} should be rejected"
            );
        }
        assert!(OverlapConfig {
            band_error_rate: Some(0.05),
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn never_pairs_a_read_with_its_own_rc() {
        // A palindromic-ish sequence would otherwise match its RC.
        let genome: DnaString = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let store = ReadStore::preprocess(
            &[Read::new("p", genome)],
            &fc_seq::TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let overlapper = Overlapper::new(
            &store,
            OverlapConfig {
                min_overlap_len: 10,
                ..test_config()
            },
        )
        .unwrap();
        let (overlaps, _) = overlapper.overlap_all(&store.split_subsets(1));
        for o in &overlaps {
            assert_ne!(
                store.mate(o.a),
                Some(o.b),
                "read paired with its own RC: {o:?}"
            );
        }
    }
}
