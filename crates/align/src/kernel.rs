//! Pluggable candidate-verification kernels and their runtime dispatch.
//!
//! The overlapper ([`crate::pairwise`]) separates *what* must be verified
//! from *how*: the seeding/geometry stage produces a batch of
//! [`VerifyReq`]s, and an [`AlignKernel`] turns each request into the
//! verdict scalar banded Needleman–Wunsch would produce. Three kernels are
//! provided, selected by [`KernelKind`] carried in `OverlapConfig` (so
//! dispatch flows through `FocusConfig`/`--align-kernel`, never ambient
//! state):
//!
//! * [`ScalarKernel`] — the reference: banded NW per request.
//! * [`MyersKernel`] — the bit-parallel prefilter pipeline of
//!   [`crate::myers`] with a portable word-at-a-time distance engine.
//! * [`WideKernel`](crate::wide::WideKernel) — the same pipeline with the
//!   edit distances computed for several requests at once in SIMD lanes
//!   (AVX2/SSE2 when the CPU has them, scalar words otherwise).
//!
//! Every kernel returns **bit-identical verdicts**: the bit-parallel paths
//! only skip scalar NW when one of the proven bounds of [`crate::myers`]
//! shows NW's verdict is already determined (or, for the exact-match
//! shortcut, when the optimal alignment is unique and known). Anything
//! else re-runs scalar NW — in a band shrunk by the gap bound, which the
//! band-equivalence argument shows cannot change the summary.

use crate::myers::{
    edit_distance_with, identity_upper_bound, max_columns_bound, optimal_gap_bound,
    prefilter_compatible, MyersScratch,
};
use crate::nw::{banded_global_with, AlignmentSummary, NwConfig, NwScratch};
use crate::overlap::OverlapKind;
use crate::pairwise::PairStats;
use crate::wide::{WideKernel, WideScratch};
use fc_seq::{ReadId, ReadStore};

/// Which alignment kernel verifies candidate overlaps. Carried by
/// `OverlapConfig` and exposed as `focus assemble --align-kernel`; all
/// settings produce bit-identical overlaps, contigs and logical metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Banded Needleman–Wunsch on every candidate (the reference).
    Scalar,
    /// Myers bit-parallel prefilter + band-shrunk scalar verification,
    /// using the portable word-at-a-time distance engine on every CPU —
    /// the reproducible-everywhere fast path.
    BitParallel,
    /// The bit-parallel pipeline with SIMD-batched distances when the CPU
    /// supports AVX2 or SSE2, portable words otherwise (the default).
    #[default]
    Auto,
}

impl KernelKind {
    /// Parses a CLI value (`scalar`, `bitparallel`, `auto`).
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s {
            "scalar" => Some(KernelKind::Scalar),
            "bitparallel" | "bit-parallel" => Some(KernelKind::BitParallel),
            "auto" => Some(KernelKind::Auto),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::BitParallel => "bitparallel",
            KernelKind::Auto => "auto",
        }
    }

    /// Builds the kernel this kind selects (`Auto` probes CPU features).
    pub fn build(self) -> Box<dyn AlignKernel> {
        match self {
            KernelKind::Scalar => Box::new(ScalarKernel),
            KernelKind::BitParallel => Box::new(MyersKernel),
            KernelKind::Auto => Box::new(WideKernel::detect()),
        }
    }
}

/// One geometry-classified candidate awaiting verification: align
/// `a[a_range]` against `b[b_range]` within `band`. The `kind`/`shift`
/// fields ride along so the overlapper can emit the [`crate::Overlap`]
/// without re-deriving geometry.
#[derive(Debug, Clone, Copy)]
pub struct VerifyReq {
    /// First read of the candidate pair.
    pub a: ReadId,
    /// Second read of the candidate pair.
    pub b: ReadId,
    /// Overlap geometry derived from the seed diagonal.
    pub kind: OverlapKind,
    /// Offset of the overlap on the outer/left read.
    pub shift: u32,
    /// Range of `a` inside the overlap.
    pub a_range: (usize, usize),
    /// Range of `b` inside the overlap.
    pub b_range: (usize, usize),
    /// Band half-width for this request (per-length adaptive banding may
    /// make it differ from the configured `NwConfig::band`).
    pub band: usize,
}

/// Verification thresholds and scoring shared by every kernel. `nw.band`
/// is a default only — the per-request [`VerifyReq::band`] governs.
#[derive(Debug, Clone, Copy)]
pub struct VerifyParams {
    /// Aligner scoring (and default band).
    pub nw: NwConfig,
    /// Minimum alignment columns for an overlap.
    pub min_overlap_len: usize,
    /// Minimum alignment identity for an overlap.
    pub min_identity: f64,
}

/// Reusable per-worker buffers shared by all kernels: the scalar band
/// buffers, the Myers `Peq`/delta vectors, and the SIMD batch staging
/// area. One value per worker thread, like `AlignScratch`.
#[derive(Debug, Default)]
pub struct KernelScratch {
    pub(crate) nw: NwScratch,
    pub(crate) myers: MyersScratch,
    pub(crate) wide: WideScratch,
}

/// A candidate-verification engine. Implementations must produce, for
/// every request, exactly the verdict [`ScalarKernel`] produces: `Some`
/// with the banded-NW summary iff the alignment meets the thresholds.
pub trait AlignKernel: std::fmt::Debug + Send + Sync {
    /// Stable kernel name for logs and metrics.
    fn name(&self) -> &'static str;

    /// Verifies `reqs`, appending one verdict per request to `out` (which
    /// is cleared first). Work counters go to `stats`; only the
    /// kernel-dependent fields (`prefilter_*`, `exact_hits`, `wide_lanes`)
    /// may differ between kernels.
    fn verify_batch(
        &self,
        store: &ReadStore,
        params: &VerifyParams,
        reqs: &[VerifyReq],
        scratch: &mut KernelScratch,
        stats: &mut PairStats,
        out: &mut Vec<Option<AlignmentSummary>>,
    );
}

/// Applies the overlap thresholds to a banded-NW summary.
#[inline]
pub(crate) fn apply_thresholds(
    params: &VerifyParams,
    summary: AlignmentSummary,
) -> Option<AlignmentSummary> {
    if (summary.columns as usize) < params.min_overlap_len
        || summary.identity() < params.min_identity
    {
        None
    } else {
        Some(summary)
    }
}

/// The reference verification: banded NW at the request's band, then the
/// thresholds.
pub(crate) fn scalar_verify(
    store: &ReadStore,
    params: &VerifyParams,
    req: &VerifyReq,
    nw: &mut NwScratch,
) -> Option<AlignmentSummary> {
    let a_seq = &store.get(req.a).seq;
    let b_seq = &store.get(req.b).seq;
    let config = NwConfig {
        band: req.band,
        ..params.nw
    };
    let summary = banded_global_with(a_seq, req.a_range, b_seq, req.b_range, &config, nw)?;
    apply_thresholds(params, summary)
}

/// Outcome of the cheap (distance-free) prefilter stages.
pub(crate) enum Classified {
    /// Verdict fully determined without an edit distance.
    Done(Option<AlignmentSummary>),
    /// Distance known without running Myers (one empty range).
    Finish(u32),
    /// A bit-parallel edit distance is required, then
    /// [`finish_with_distance`].
    NeedDistance,
}

/// Stages of the bit-parallel pipeline that need no edit distance: the
/// scalar fallback for incompatible scoring, the out-of-band rejection
/// scalar NW would make, the exact-match shortcut, and the
/// cannot-reach-`min_overlap_len` rejection.
pub(crate) fn classify(
    store: &ReadStore,
    params: &VerifyParams,
    req: &VerifyReq,
    nw: &mut NwScratch,
    stats: &mut PairStats,
) -> Classified {
    if !prefilter_compatible(&params.nw) {
        return Classified::Done(scalar_verify(store, params, req, nw));
    }
    let (n, m) = (req.a_range.1 - req.a_range.0, req.b_range.1 - req.b_range.0);
    if n.abs_diff(m) > req.band {
        // Scalar banded NW rejects this outright (global path leaves the
        // band); mirror it without touching the sequences.
        return Classified::Done(None);
    }
    let a_view = store.get(req.a).seq.packed();
    let b_view = store.get(req.b).seq.packed();
    if n == m && a_view.range_eq(req.a_range.0, &b_view, req.b_range.0, n) {
        // Equal ranges: with match > 0 >= mismatch and gap < 0, the
        // all-diagonal alignment is the unique score optimum (anything
        // else has < n matches, so a strictly lower score), so scalar NW
        // must report exactly this summary.
        stats.exact_hits += 1;
        let summary = AlignmentSummary {
            score: params.nw.match_score * n as i32,
            columns: n as u32,
            matches: n as u32,
        };
        return Classified::Done(apply_thresholds(params, summary));
    }
    if n + m < params.min_overlap_len {
        // Columns never exceed n + m, so the length threshold is
        // unreachable whatever NW computes.
        stats.prefilter_rejected += 1;
        return Classified::Done(None);
    }
    if n.min(m) == 0 {
        // One side empty: the distance is the other side's length.
        return Classified::Finish(n.max(m) as u32);
    }
    Classified::NeedDistance
}

/// Final stage of the bit-parallel pipeline, given the exact edit distance
/// `d`: reject via the identity and column bounds, otherwise re-verify
/// with scalar NW in the gap-bound-shrunk band (provably the same summary
/// as the configured band — see [`crate::myers`]).
pub(crate) fn finish_with_distance(
    store: &ReadStore,
    params: &VerifyParams,
    req: &VerifyReq,
    d: u32,
    nw: &mut NwScratch,
    stats: &mut PairStats,
) -> Option<AlignmentSummary> {
    let (n, m) = (req.a_range.1 - req.a_range.0, req.b_range.1 - req.b_range.0);
    if identity_upper_bound(n, m, d) < params.min_identity {
        stats.prefilter_rejected += 1;
        return None;
    }
    let gmax = optimal_gap_bound(&params.nw, n, m, d);
    if max_columns_bound(n, m, gmax) < params.min_overlap_len {
        stats.prefilter_rejected += 1;
        return None;
    }
    stats.prefilter_verified += 1;
    let shrunk = VerifyReq {
        band: req.band.min(gmax),
        ..*req
    };
    scalar_verify(store, params, &shrunk, nw)
}

/// The reference kernel: scalar banded NW on every request.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl AlignKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn verify_batch(
        &self,
        store: &ReadStore,
        params: &VerifyParams,
        reqs: &[VerifyReq],
        scratch: &mut KernelScratch,
        _stats: &mut PairStats,
        out: &mut Vec<Option<AlignmentSummary>>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        for req in reqs {
            out.push(scalar_verify(store, params, req, &mut scratch.nw));
        }
    }
}

/// The portable bit-parallel kernel: Myers distances one request at a
/// time, then the bound-based prefilter and band-shrunk verification.
#[derive(Debug, Clone, Copy, Default)]
pub struct MyersKernel;

impl AlignKernel for MyersKernel {
    fn name(&self) -> &'static str {
        "bitparallel"
    }

    fn verify_batch(
        &self,
        store: &ReadStore,
        params: &VerifyParams,
        reqs: &[VerifyReq],
        scratch: &mut KernelScratch,
        stats: &mut PairStats,
        out: &mut Vec<Option<AlignmentSummary>>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        for req in reqs {
            let verdict = match classify(store, params, req, &mut scratch.nw, stats) {
                Classified::Done(v) => v,
                Classified::Finish(d) => {
                    finish_with_distance(store, params, req, d, &mut scratch.nw, stats)
                }
                Classified::NeedDistance => {
                    let d = edit_distance_with(
                        store.get(req.a).seq.packed(),
                        req.a_range,
                        store.get(req.b).seq.packed(),
                        req.b_range,
                        &mut scratch.myers,
                    );
                    finish_with_distance(store, params, req, d, &mut scratch.nw, stats)
                }
            };
            out.push(verdict);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::{Base, DnaString, Read, TrimConfig};

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    /// A store of 12 base reads, each followed by a lightly mutated copy
    /// (forward ids `4i` and `4i + 2` after RC augmentation), so requests
    /// can pair homologous ranges as well as unrelated ones.
    fn paired_store(rng: &mut Rng) -> ReadStore {
        let mut reads = Vec::new();
        for i in 0..12 {
            let len = 30 + (rng.next() % 150) as usize;
            let base: DnaString = (0..len)
                .map(|_| Base::from_code((rng.next() % 4) as u8))
                .collect();
            let mut copy = base.clone();
            for _ in 0..rng.next() % 5 {
                let p = (rng.next() as usize) % copy.len();
                copy.set(p, Base::from_code((rng.next() % 4) as u8));
            }
            reads.push(Read::new(format!("b{i}"), base));
            reads.push(Read::new(format!("m{i}"), copy));
        }
        ReadStore::preprocess(
            &reads,
            &TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// A mixed corpus: unrelated random ranges (mostly rejects), jittered
    /// self-ranges (exact hits and tiny-distance survivors), and homologous
    /// base-vs-mutated-copy ranges (accepts and near-threshold verdicts),
    /// over bands from 0 through 16 including `dl == band ± 1` edges.
    fn random_reqs(store: &ReadStore, rng: &mut Rng, count: usize) -> Vec<VerifyReq> {
        let mut reqs = Vec::new();
        for _ in 0..count {
            let band = [0usize, 1, 4, 8, 16][(rng.next() % 5) as usize];
            let (a, b, a_range, b_range) = match rng.next() % 4 {
                0 | 1 => {
                    // Unrelated ranges with band-straddling length deltas.
                    let a = ReadId((rng.next() % store.len() as u64) as u32);
                    let b = ReadId((rng.next() % store.len() as u64) as u32);
                    let (la, lb) = (store.get(a).seq.len(), store.get(b).seq.len());
                    let n = (rng.next() as usize) % (la + 1);
                    let delta = (rng.next() % (band as u64 + 3)) as usize;
                    let m = if rng.next() % 2 == 0 {
                        n.saturating_sub(delta).min(lb)
                    } else {
                        (n + delta).min(lb)
                    };
                    let a0 = (rng.next() as usize) % (la - n + 1);
                    let b0 = (rng.next() as usize) % (lb - m + 1);
                    (a, b, (a0, a0 + n), (b0, b0 + m))
                }
                2 => {
                    // Same read, endpoints jittered by up to 2 bases.
                    let a = ReadId((rng.next() % store.len() as u64) as u32);
                    let la = store.get(a).seq.len();
                    let n = (rng.next() as usize) % (la + 1);
                    let a0 = (rng.next() as usize) % (la - n + 1);
                    let b0 = a0.saturating_sub((rng.next() % 3) as usize);
                    let b1 = ((a0 + n) + (rng.next() % 3) as usize).min(la);
                    (a, a, (a0, a0 + n), (b0, b1.max(b0)))
                }
                _ => {
                    // Homologous: base read vs its mutated copy.
                    let i = rng.next() % 12;
                    let a = ReadId(4 * i as u32);
                    let b = ReadId(4 * i as u32 + 2);
                    let la = store.get(a).seq.len();
                    let n = (rng.next() as usize) % (la + 1);
                    let a0 = (rng.next() as usize) % (la - n + 1);
                    let jit = (rng.next() % 2) as usize;
                    (a, b, (a0, a0 + n), (a0, (a0 + n + jit).min(la)))
                }
            };
            reqs.push(VerifyReq {
                a,
                b,
                kind: OverlapKind::SuffixPrefix,
                shift: 0,
                a_range,
                b_range,
                band,
            });
        }
        reqs
    }

    fn run(
        kernel: &dyn AlignKernel,
        store: &ReadStore,
        params: &VerifyParams,
        reqs: &[VerifyReq],
    ) -> (Vec<Option<AlignmentSummary>>, PairStats) {
        let mut scratch = KernelScratch::default();
        let mut stats = PairStats::default();
        let mut out = Vec::new();
        kernel.verify_batch(store, params, reqs, &mut scratch, &mut stats, &mut out);
        assert_eq!(out.len(), reqs.len());
        (out, stats)
    }

    /// The differential corpus: every kernel must agree verdict-for-verdict
    /// with the scalar reference across empty, short, multiword and
    /// band-edge requests.
    #[test]
    fn kernels_agree_with_scalar_reference() {
        let mut rng = Rng(42);
        let params = VerifyParams {
            nw: NwConfig::default(),
            min_overlap_len: 30,
            min_identity: 0.9,
        };
        let kernels: Vec<Box<dyn AlignKernel>> = vec![
            Box::new(MyersKernel),
            Box::new(WideKernel::detect()),
            Box::new(WideKernel::portable()),
        ];
        for round in 0..6 {
            let store = paired_store(&mut rng);
            let reqs = random_reqs(&store, &mut rng, 300);
            let (reference, ref_stats) = run(&ScalarKernel, &store, &params, &reqs);
            assert_eq!(ref_stats.prefilter_rejected, 0);
            assert_eq!(ref_stats.exact_hits, 0);
            assert!(reference.iter().any(|v| v.is_some()), "corpus too easy");
            assert!(reference.iter().any(|v| v.is_none()), "corpus too easy");
            for kernel in &kernels {
                let (got, stats) = run(kernel.as_ref(), &store, &params, &reqs);
                assert_eq!(got, reference, "{} diverges in round {round}", kernel.name());
                // Every candidate the prefilter let through or resolved
                // exactly accounts against the request count.
                assert!(
                    stats.prefilter_rejected + stats.prefilter_verified + stats.exact_hits
                        <= reqs.len() as u64,
                    "{} stats overcount",
                    kernel.name()
                );
            }
        }
    }

    /// Degenerate thresholds (accept everything / reject everything) and
    /// empty ranges keep the kernels in lockstep.
    #[test]
    fn kernels_agree_at_threshold_extremes() {
        let mut rng = Rng(7);
        let store = paired_store(&mut rng);
        let reqs = {
            let mut r = random_reqs(&store, &mut rng, 120);
            // Force some fully-empty and half-empty ranges.
            for i in 0..6 {
                r[i].a_range = (0, 0);
            }
            for i in 6..12 {
                r[i].b_range = (0, 0);
            }
            for i in 0..3 {
                r[i].b_range = (0, 0);
            }
            r
        };
        for (min_len, min_id) in [(0usize, 0.0f64), (0, 1.0), (200, 0.9), (50, 0.95)] {
            let params = VerifyParams {
                nw: NwConfig::default(),
                min_overlap_len: min_len,
                min_identity: min_id,
            };
            let (reference, _) = run(&ScalarKernel, &store, &params, &reqs);
            for kernel in [
                &MyersKernel as &dyn AlignKernel,
                &WideKernel::detect(),
                &WideKernel::portable(),
            ] {
                let (got, _) = run(kernel, &store, &params, &reqs);
                assert_eq!(
                    got,
                    reference,
                    "{} diverges at min_len={min_len} min_id={min_id}",
                    kernel.name()
                );
            }
        }
    }

    /// Exotic scoring configs (positive mismatch, zero gap) must fall back
    /// to plain scalar behaviour rather than apply the bounds.
    #[test]
    fn incompatible_scoring_falls_back_to_scalar() {
        let mut rng = Rng(19);
        let store = paired_store(&mut rng);
        let reqs = random_reqs(&store, &mut rng, 80);
        for nw in [
            NwConfig {
                mismatch_score: 2,
                ..NwConfig::default()
            },
            NwConfig {
                gap_score: 0,
                ..NwConfig::default()
            },
        ] {
            let params = VerifyParams {
                nw,
                min_overlap_len: 30,
                min_identity: 0.9,
            };
            let (reference, _) = run(&ScalarKernel, &store, &params, &reqs);
            let (got, stats) = run(&MyersKernel, &store, &params, &reqs);
            assert_eq!(got, reference);
            assert_eq!(stats.prefilter_rejected, 0, "bounds must not be applied");
            assert_eq!(stats.exact_hits, 0);
        }
    }

    #[test]
    fn kernel_kind_parses_cli_values() {
        assert_eq!(KernelKind::parse("scalar"), Some(KernelKind::Scalar));
        assert_eq!(KernelKind::parse("bitparallel"), Some(KernelKind::BitParallel));
        assert_eq!(KernelKind::parse("bit-parallel"), Some(KernelKind::BitParallel));
        assert_eq!(KernelKind::parse("auto"), Some(KernelKind::Auto));
        assert_eq!(KernelKind::parse("fast"), None);
        for kind in [KernelKind::Scalar, KernelKind::BitParallel, KernelKind::Auto] {
            assert_eq!(KernelKind::parse(kind.as_str()), Some(kind));
            let _ = kind.build(); // constructible on this machine
        }
        assert_eq!(KernelKind::default(), KernelKind::Auto);
    }
}
