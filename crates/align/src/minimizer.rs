//! Minimizer-based seeding — the hash-index alternative to the suffix array.
//!
//! The paper's aligner uses a suffix array (§II-B); most newer overlappers
//! (minimap-style) instead index *minimizers*: the minimum-hash k-mer of
//! every w-long window. The index is smaller by ~w× and lookups are O(1),
//! at the cost of probabilistic seeding. This module provides that
//! alternative so the two can be compared (see the `micro_align` bench);
//! the pipeline's default remains the paper-faithful suffix array.

use fc_seq::{DnaString, ReadId};
use std::cmp::Reverse;
use std::collections::HashMap;

/// Multiplicative hash decorrelating packed k-mer values from sequence
/// content (otherwise poly-A would always win the window minimum).
#[inline]
fn splohash(kmer: u64) -> u64 {
    // splitmix64 finalizer.
    let mut z = kmer.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The `(position, packed k-mer)` minimizers of a sequence: for every
/// window of `w` consecutive k-mers, the one with the smallest hash
/// (leftmost on ties). Consecutive duplicate selections are emitted once.
pub fn minimizers(seq: &DnaString, k: usize, w: usize) -> Vec<(u32, u64)> {
    assert!((1..=32).contains(&k), "k must be in 1..=32");
    assert!(w >= 1, "w must be >= 1");
    let kmers: Vec<(usize, u64)> = seq.kmers(k).collect();
    if kmers.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<(u32, u64)> = Vec::new();
    let n = kmers.len();
    for win_start in 0..n.saturating_sub(w - 1).max(1) {
        let win = &kmers[win_start..(win_start + w).min(n)];
        let Some(&(pos, kmer)) = win.iter().min_by_key(|&&(pos, km)| (splohash(km), pos)) else {
            continue;
        };
        if out.last() != Some(&(pos as u32, kmer)) {
            out.push((pos as u32, kmer));
        }
    }
    out
}

/// A minimizer index over a read subset.
#[derive(Debug, Clone)]
pub struct MinimizerIndex {
    k: usize,
    w: usize,
    map: HashMap<u64, Vec<(ReadId, u32)>>,
    indexed_reads: usize,
}

impl MinimizerIndex {
    /// Indexes `reads` with k-mer length `k` and window `w`.
    pub fn build(reads: &[(ReadId, &DnaString)], k: usize, w: usize) -> MinimizerIndex {
        let mut map: HashMap<u64, Vec<(ReadId, u32)>> = HashMap::new();
        for &(id, seq) in reads {
            for (pos, kmer) in minimizers(seq, k, w) {
                map.entry(kmer).or_default().push((id, pos));
            }
        }
        MinimizerIndex {
            k,
            w,
            map,
            indexed_reads: reads.len(),
        }
    }

    /// K-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Window length.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Number of indexed reads.
    pub fn read_count(&self) -> usize {
        self.indexed_reads
    }

    /// Total stored minimizer postings.
    pub fn posting_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Occurrences of a packed k-mer (empty for non-minimizers).
    pub fn lookup(&self, kmer: u64) -> &[(ReadId, u32)] {
        self.map.get(&kmer).map_or(&[], Vec::as_slice)
    }

    /// Candidate mates of `query`: reads sharing at least `min_shared`
    /// minimizers, with the most-voted diagonal per mate, as
    /// `(read, diagonal, votes)`. The same shape the suffix-array seeding
    /// produces, so downstream verification is identical.
    pub fn candidates(
        &self,
        query_id: ReadId,
        query: &DnaString,
        min_shared: usize,
    ) -> Vec<(ReadId, i64, u32)> {
        let mut votes: HashMap<(ReadId, i64), u32> = HashMap::new();
        for (q_pos, kmer) in minimizers(query, self.k, self.w) {
            for &(r, r_pos) in self.lookup(kmer) {
                if r == query_id {
                    continue;
                }
                *votes.entry((r, q_pos as i64 - r_pos as i64)).or_insert(0) += 1;
            }
        }
        // The highest count wins per read, the smallest diagonal breaks
        // ties — previously a tie was broken by whichever entry hash
        // iteration happened to visit first, which varied per process.
        let mut tallies: Vec<(ReadId, i64, u32)> =
            votes.into_iter().map(|((r, d), c)| (r, d, c)).collect();
        tallies.sort_unstable_by_key(|&(r, d, c)| (r, Reverse(c), d));
        let mut out: Vec<(ReadId, i64, u32)> = Vec::new();
        for (r, d, c) in tallies {
            let first_for_read = out.last().map_or(true, |&(prev, _, _)| prev != r);
            if first_for_read && c as usize >= min_shared {
                out.push((r, d, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::Base;

    fn genome(len: usize, seed: u64) -> DnaString {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Base::from_code((state >> 5) as u8 & 3)
            })
            .collect()
    }

    #[test]
    fn minimizers_are_a_subset_of_kmers_and_cover_windows() {
        let seq = genome(500, 1);
        let (k, w) = (15, 10);
        let mins = minimizers(&seq, k, w);
        assert!(!mins.is_empty());
        // Every minimizer is a real k-mer of the sequence at its position.
        for &(pos, kmer) in &mins {
            assert_eq!(seq.kmer_u64(pos as usize, k), Some(kmer));
        }
        // Density ~ 2/(w+1): allow generous bounds.
        let n_kmers = seq.len() - k + 1;
        assert!(
            mins.len() * (w + 1) >= n_kmers,
            "too sparse: {}",
            mins.len()
        );
        assert!(mins.len() * 2 <= n_kmers, "too dense: {}", mins.len());
        // Consecutive selections are strictly increasing in position.
        for pair in mins.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn identical_windows_pick_identical_minimizers() {
        // Overlapping reads share interior minimizers — the property that
        // makes minimizer seeding find overlaps.
        let g = genome(300, 2);
        let a = g.slice(0, 200);
        let b = g.slice(100, 300);
        let (k, w) = (15, 8);
        let mins_a: std::collections::HashSet<u64> =
            minimizers(&a, k, w).into_iter().map(|(_, m)| m).collect();
        let shared = minimizers(&b, k, w)
            .into_iter()
            .filter(|(pos, m)| (*pos as usize) < 100 - k && mins_a.contains(m))
            .count();
        assert!(
            shared >= 5,
            "overlapping reads share only {shared} minimizers"
        );
    }

    #[test]
    fn candidates_report_correct_diagonal() {
        let g = genome(400, 3);
        let r0 = g.slice(0, 200);
        let r1 = g.slice(120, 320);
        let index = MinimizerIndex::build(&[(ReadId(1), &r1)], 15, 8);
        let candidates = index.candidates(ReadId(0), &r0, 2);
        assert_eq!(candidates.len(), 1);
        let (r, diag, votes) = candidates[0];
        assert_eq!(r, ReadId(1));
        assert_eq!(diag, 120, "diagonal should equal the genomic offset");
        assert!(votes >= 2);
    }

    #[test]
    fn no_candidates_for_unrelated_reads() {
        let a = genome(200, 4);
        let b = genome(200, 999);
        let index = MinimizerIndex::build(&[(ReadId(1), &b)], 15, 8);
        assert!(index.candidates(ReadId(0), &a, 2).is_empty());
    }

    #[test]
    fn index_is_much_smaller_than_full_kmer_set() {
        let g = genome(5_000, 5);
        let reads: Vec<DnaString> = (0..40)
            .map(|i| g.slice(i * 100, i * 100 + 1000.min(g.len() - i * 100)))
            .collect();
        let entries: Vec<(ReadId, &DnaString)> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| (ReadId(i as u32), s))
            .collect();
        let index = MinimizerIndex::build(&entries, 15, 10);
        let total_kmers: usize = reads.iter().map(|r| r.len().saturating_sub(14)).sum();
        assert!(
            index.posting_count() * 3 < total_kmers,
            "index not sparse: {} postings vs {} k-mers",
            index.posting_count(),
            total_kmers
        );
    }

    #[test]
    fn self_matches_are_skipped() {
        let g = genome(200, 6);
        let index = MinimizerIndex::build(&[(ReadId(0), &g)], 15, 8);
        assert!(index.candidates(ReadId(0), &g, 1).is_empty());
    }
}
