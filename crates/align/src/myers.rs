//! Myers' bit-parallel global edit distance (Myers 1999, Hyyrö 2003) and the
//! sound prefilter bounds that connect it to the scalar banded NW verifier.
//!
//! # Role in the kernel layer
//!
//! The bit-parallel kernels ([`crate::kernel`]) never *replace* the scalar
//! banded Needleman–Wunsch verifier — they bound it. For a candidate pair
//! they compute the exact unit-cost (Levenshtein) edit distance `D` between
//! the two overlap ranges, 64 pattern rows per machine word, and from `D`
//! derive *sound* bounds on what [`banded_global_with`](crate::nw) could
//! possibly report:
//!
//! * an upper bound on achievable identity → candidates that cannot reach
//!   `min_identity` are rejected without running NW at all,
//! * an upper bound on achievable alignment columns → candidates that cannot
//!   reach `min_overlap_len` are rejected without running NW,
//! * an upper bound on the gap count of any score-optimal alignment → the
//!   surviving candidates re-run scalar NW in a *shrunken* band that is
//!   provably equivalent to the configured one.
//!
//! Every bound errs on the side of running the scalar verifier, so overlaps
//! (and therefore contigs) are bit-identical to the pure scalar kernel.
//!
//! # Bound derivations
//!
//! Notation: the two ranges have lengths `n` and `m`, `dl = |n - m|`,
//! `mn = min(n,m)`, `mx = max(n,m)`. An alignment has `mt` match columns,
//! `x` mismatch columns and `g` gap columns; its column count is
//! `c = mt + x + g` and every base is consumed exactly once, so
//! `n + m = 2·mt + 2·x + g`. Scores come from [`NwConfig`]: `ma` per match,
//! `mi` per mismatch, `ga` per gap (the bounds below require `ma > 0`,
//! `mi <= 0`, `ga < 0` — see [`prefilter_compatible`]).
//!
//! **Identity bound.** Any alignment with `x` mismatches and `g` gaps yields
//! an edit script of cost `x + g`, so `x + g >= D`. From
//! `mt = (n + m - g)/2 - x` and `x >= max(0, D - g)`:
//! `mt <= (n + m + g)/2 - D` for `g <= D` (maximised at `g = D`) and
//! `mt <= (n + m - g)/2 < (n + m - D)/2` for `g > D`. Hence
//! `mt <= floor((n + m - D)/2)` for *every* alignment. Columns satisfy
//! `c >= mx` (each column consumes at most one base per side), so
//! `identity = mt/c <= floor((n + m - D)/2) / mx` — see
//! [`identity_upper_bound`]. The `f64` comparison against `min_identity` is
//! sound because all operands are exactly representable (`< 2^53`) and
//! correctly-rounded division is monotone: if the true rational identity is
//! `<=` the true rational bound, the rounded values satisfy the same `<=`.
//!
//! **Gap bound (band shrinking).** Any alignment with `g` gaps scores at
//! most `ma·mn + ga·g` (at most `mn` matches, mismatches score `<= 0`).
//! Conversely, an alignment achieving the unit-cost optimum `D = x + g`
//! exists, and its score is
//! `ma·(n + m - g)/2 - (ma - mi)·x + ga·g >= (ma·(n + m) - D·M)/2` where
//! `M = max(2·(ma - mi), ma - 2·ga)` covers the worst split of `D` into
//! mismatches and gaps. So the best score `S*` satisfies
//! `2·S* >= ma·(n + m) - D·M`, and any alignment with
//! `(-2·ga)·g > D·M - ma·dl` scores *strictly* below `S*`: it can never be
//! chosen, regardless of tie-breaking. [`optimal_gap_bound`] returns
//! `gmax = floor((D·M - ma·dl) / (-2·ga))` (clamped to `>= dl`; the
//! achieving alignment has `dl <= g <= D`, so `gmax >= dl` always holds).
//!
//! **Band equivalence.** A path's diagonal offset `|j - i|` changes only on
//! gap columns, so every potentially-optimal path stays within diagonal
//! `|j - i| <= gmax`. Running banded NW with half-width
//! `band_eff = min(band, gmax)` therefore explores every potentially-optimal
//! path that the configured band explores. The summaries are identical, not
//! just the scores: suppose a cell on the final traceback path preferred a
//! predecessor (by the diag > up > left tie order) in the wide band that the
//! narrow band lacks, or saw an inflated value through an out-of-band-eff
//! prefix. Either way there is a prefix with `> gmax` gaps whose value ties
//! the best prefix at a cell on an optimal path; extending it along the
//! path's suffix yields a full alignment with `> gmax` gaps scoring exactly
//! `S*` — contradicting strict suboptimality. So on every traceback cell
//! both DPs see the same candidate values and make the same tie-break
//! choice, and the `(score, columns, matches)` summary is unchanged.
//!
//! **Columns bound.** `c = (n + m + g)/2` and any chosen alignment has
//! `g <= gmax`, so `c <= floor((n + m + gmax)/2)` (the floor absorbs the
//! parity constraint `g ≡ n + m (mod 2)`) — see [`max_columns_bound`].
//! If that bound is below `min_overlap_len`, scalar NW would reject the
//! candidate whatever it computes.

use crate::nw::NwConfig;
use fc_seq::PackedView;

/// Reusable buffers for [`edit_distance_with`]: the `Peq` match table (one
/// bitmask per symbol per 64-row block) and the vertical delta vectors.
/// One value per worker thread, following the `NwScratch`/`AlignScratch`
/// zero-allocation pattern.
#[derive(Debug, Clone, Default)]
pub struct MyersScratch {
    peq: Vec<[u64; 4]>,
    pv: Vec<u64>,
    mv: Vec<u64>,
}

/// Exact global (Levenshtein) edit distance between `a[a_range]` and
/// `b[b_range]`, computed bit-parallel: the shorter range is the pattern,
/// processed 64 rows per `u64` word (Myers 1999; block carries after Hyyrö
/// 2003 / the edlib formulation), the longer range is scanned column by
/// column straight from the 2-bit packed words.
///
/// # Panics
/// Panics in debug builds if a range is out of bounds.
pub fn edit_distance_with(
    a: PackedView<'_>,
    a_range: (usize, usize),
    b: PackedView<'_>,
    b_range: (usize, usize),
    scratch: &mut MyersScratch,
) -> u32 {
    let (n, m) = (a_range.1 - a_range.0, b_range.1 - b_range.0);
    // Pattern = shorter side: fewer words per column.
    let ((pat, pat_range), (text, text_range)) = if n <= m {
        ((a, a_range), (b, b_range))
    } else {
        ((b, b_range), (a, a_range))
    };
    let plen = pat_range.1 - pat_range.0;
    let tlen = text_range.1 - text_range.0;
    if plen == 0 {
        return tlen as u32;
    }
    if plen <= 64 {
        return distance_1word(pat, pat_range, text, text_range);
    }
    distance_blocked(pat, pat_range, text, text_range, scratch)
}

/// Builds `Peq` for `pat[range]` into `peq` (cleared first): bit `i` of
/// `peq[i / 64][c]` is set iff pattern row `i + 1` is base code `c`.
fn build_peq(pat: PackedView<'_>, range: (usize, usize), peq: &mut Vec<[u64; 4]>) {
    let plen = range.1 - range.0;
    let words = plen.div_ceil(64);
    peq.clear();
    peq.resize(words, [0u64; 4]);
    let mut i = 0;
    while i < plen {
        let chunk = (plen - i).min(32);
        let mut window = pat.window(range.0 + i);
        for b in 0..chunk {
            let bit = i + b;
            peq[bit / 64][(window & 0b11) as usize] |= 1u64 << (bit % 64);
            window >>= 2;
        }
        i += chunk;
    }
}

/// Single-word Myers (pattern length 1..=64), global variant: the horizontal
/// boundary delta `D(0,j) - D(0,j-1) = +1` enters as the carry-in bit after
/// each shift.
fn distance_1word(
    pat: PackedView<'_>,
    pat_range: (usize, usize),
    text: PackedView<'_>,
    text_range: (usize, usize),
) -> u32 {
    let plen = pat_range.1 - pat_range.0;
    debug_assert!((1..=64).contains(&plen));
    let mut peq = [0u64; 4];
    let mut window = pat.window(pat_range.0);
    let tail = if plen > 32 {
        pat.window(pat_range.0 + 32)
    } else {
        0
    };
    for i in 0..plen {
        if i == 32 {
            window = tail;
        }
        peq[(window & 0b11) as usize] |= 1u64 << i;
        window >>= 2;
    }
    let score_bit = 1u64 << (plen - 1);
    let mask = if plen == 64 { !0u64 } else { (1u64 << plen) - 1 };
    let mut pv = mask;
    let mut mv = 0u64;
    let mut score = plen as i64;
    let (t_start, t_end) = text_range;
    let mut pos = t_start;
    while pos < t_end {
        let chunk = (t_end - pos).min(32);
        let mut tw = text.window(pos);
        for _ in 0..chunk {
            let eq = peq[(tw & 0b11) as usize];
            tw >>= 2;
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & score_bit != 0 {
                score += 1;
            } else if mh & score_bit != 0 {
                score -= 1;
            }
            // Global alignment: shift in the top-row +1 carry.
            let ph = (ph << 1) | 1;
            pv = ((mh << 1) | !(xv | ph)) & mask;
            mv = ph & xv & mask;
        }
        pos += chunk;
    }
    score as u32
}

/// Blocked multi-word Myers for patterns longer than 64 rows: words are
/// chained per column through `hin`/`hout` carries in `{-1, 0, +1}`, with
/// the top row's constant `+1` entering word 0.
fn distance_blocked(
    pat: PackedView<'_>,
    pat_range: (usize, usize),
    text: PackedView<'_>,
    text_range: (usize, usize),
    scratch: &mut MyersScratch,
) -> u32 {
    let plen = pat_range.1 - pat_range.0;
    let words = plen.div_ceil(64);
    build_peq(pat, pat_range, &mut scratch.peq);
    let peq = &scratch.peq[..words];
    let last = words - 1;
    let last_bits = plen - 64 * last; // 1..=64
    let last_mask = if last_bits == 64 {
        !0u64
    } else {
        (1u64 << last_bits) - 1
    };
    let score_bit = 1u64 << (last_bits - 1);
    scratch.pv.clear();
    scratch.pv.resize(words, !0u64);
    scratch.pv[last] = last_mask;
    scratch.mv.clear();
    scratch.mv.resize(words, 0u64);
    let (pv, mv) = (&mut scratch.pv[..words], &mut scratch.mv[..words]);
    let mut score = plen as i64;
    let (t_start, t_end) = text_range;
    let mut pos = t_start;
    while pos < t_end {
        let chunk = (t_end - pos).min(32);
        let mut tw = text.window(pos);
        for _ in 0..chunk {
            let code = (tw & 0b11) as usize;
            tw >>= 2;
            let mut hin: i64 = 1; // top-row boundary delta is always +1
            for k in 0..words {
                let mut eq = peq[k][code];
                let pvk = pv[k];
                let mvk = mv[k];
                let xv = eq | mvk;
                if hin < 0 {
                    eq |= 1;
                }
                let xh = (((eq & pvk).wrapping_add(pvk)) ^ pvk) | eq;
                let ph = mvk | !(xh | pvk);
                let mh = pvk & xh;
                let test = if k == last { score_bit } else { 1u64 << 63 };
                let hout: i64 = if ph & test != 0 {
                    1
                } else if mh & test != 0 {
                    -1
                } else {
                    0
                };
                let mut ph = ph << 1;
                let mut mh = mh << 1;
                if hin > 0 {
                    ph |= 1;
                } else if hin < 0 {
                    mh |= 1;
                }
                pv[k] = mh | !(xv | ph);
                mv[k] = ph & xv;
                if k == last {
                    pv[k] &= last_mask;
                    mv[k] &= last_mask;
                }
                hin = hout;
            }
            score += hin;
        }
        pos += chunk;
    }
    score as u32
}

/// True if [`NwConfig`] scores satisfy the assumptions of the prefilter
/// bounds (`match > 0`, `mismatch <= 0`, `gap < 0`). Kernels fall back to
/// plain scalar verification for exotic scoring schemes.
pub fn prefilter_compatible(nw: &NwConfig) -> bool {
    nw.match_score > 0 && nw.mismatch_score <= 0 && nw.gap_score < 0
}

/// Upper bound on the identity any alignment of ranges with lengths `n` and
/// `m` at edit distance `d` can achieve: `floor((n + m - d)/2) / max(n, m)`
/// (see the module docs for the derivation). Requires `n.max(m) > 0`.
pub fn identity_upper_bound(n: usize, m: usize, d: u32) -> f64 {
    debug_assert!(n.max(m) > 0);
    let max_matches = (n + m).saturating_sub(d as usize) / 2;
    max_matches as f64 / n.max(m) as f64
}

/// Upper bound on the gap-column count of any alignment that banded NW under
/// `nw` could select for ranges of lengths `n` and `m` at edit distance `d`:
/// alignments with more gaps score strictly below an achievable score (see
/// the module docs). Requires [`prefilter_compatible`].
pub fn optimal_gap_bound(nw: &NwConfig, n: usize, m: usize, d: u32) -> usize {
    debug_assert!(prefilter_compatible(nw));
    let dl = n.abs_diff(m) as i128;
    let ma = nw.match_score as i128;
    let mi = nw.mismatch_score as i128;
    let ga = nw.gap_score as i128;
    let big_m = (2 * (ma - mi)).max(ma - 2 * ga);
    let gmax = (d as i128 * big_m - ma * dl).div_euclid(-2 * ga);
    // The distance-achieving alignment has dl <= g <= d and is not excluded,
    // so the bound can never be tighter than dl.
    usize::try_from(gmax.max(dl)).unwrap_or(usize::MAX)
}

/// Upper bound on the column count of any alignment banded NW could select:
/// `floor((n + m + gmax)/2)`, capped at `n + m`.
pub fn max_columns_bound(n: usize, m: usize, gmax: usize) -> usize {
    ((n + m).saturating_add(gmax) / 2).min(n + m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::DnaString;

    /// Reference Levenshtein DP.
    pub(crate) fn ref_distance(a: &[u8], b: &[u8]) -> u32 {
        let mut prev: Vec<u32> = (0..=b.len() as u32).collect();
        let mut cur = vec![0u32; b.len() + 1];
        for i in 1..=a.len() {
            cur[0] = i as u32;
            for j in 1..=b.len() {
                let sub = prev[j - 1] + u32::from(a[i - 1] != b[j - 1]);
                cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    pub(crate) fn from_codes(codes: &[u8]) -> DnaString {
        codes
            .iter()
            .map(|&c| fc_seq::Base::from_code(c & 0b11))
            .collect()
    }

    fn dist(a: &DnaString, b: &DnaString) -> u32 {
        edit_distance_with(
            a.packed(),
            (0, a.len()),
            b.packed(),
            (0, b.len()),
            &mut MyersScratch::default(),
        )
    }

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    #[test]
    fn empty_ranges() {
        let a: DnaString = "ACGT".parse().unwrap();
        let mut s = MyersScratch::default();
        assert_eq!(edit_distance_with(a.packed(), (0, 0), a.packed(), (0, 0), &mut s), 0);
        assert_eq!(edit_distance_with(a.packed(), (0, 0), a.packed(), (0, 4), &mut s), 4);
        assert_eq!(edit_distance_with(a.packed(), (1, 4), a.packed(), (2, 2), &mut s), 3);
    }

    #[test]
    fn small_known_cases() {
        let cases: &[(&str, &str, u32)] = &[
            ("ACGT", "ACGT", 0),
            ("ACGT", "ACGA", 1),
            ("ACGT", "AGT", 1),
            ("ACGT", "TGCA", 4),
            ("A", "T", 1),
            ("AAAA", "TTTT", 4),
            ("ACGTACGT", "ACGACGT", 1),
        ];
        for &(a, b, want) in cases {
            let (a, b): (DnaString, DnaString) = (a.parse().unwrap(), b.parse().unwrap());
            assert_eq!(dist(&a, &b), want, "{a} vs {b}");
            assert_eq!(dist(&b, &a), want, "symmetric");
        }
    }

    #[test]
    fn word_boundary_lengths_match_reference() {
        // Pattern lengths straddling the 1-word/2-word and 2-word/3-word
        // boundaries, texts slightly longer.
        let mut rng = Rng(7);
        for &plen in &[1usize, 2, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129, 150] {
            for _ in 0..20 {
                let tlen = plen + (rng.next() % 12) as usize;
                let pc: Vec<u8> = (0..plen).map(|_| (rng.next() % 4) as u8).collect();
                let mut tc: Vec<u8> = (0..tlen).map(|_| (rng.next() % 4) as u8).collect();
                if rng.next() % 2 == 0 {
                    // Correlated pair: text is a mutated copy of the pattern.
                    tc = pc.clone();
                    tc.resize(tlen, 0);
                    for _ in 0..rng.next() % 6 {
                        let p = (rng.next() as usize) % tc.len();
                        tc[p] = (rng.next() % 4) as u8;
                    }
                }
                let (a, b) = (from_codes(&pc), from_codes(&tc));
                assert_eq!(dist(&a, &b), ref_distance(&pc, &tc), "plen {plen} tlen {tlen}");
            }
        }
    }

    #[test]
    fn subranges_match_reference() {
        let mut rng = Rng(13);
        let codes: Vec<u8> = (0..300).map(|_| (rng.next() % 4) as u8).collect();
        let s = from_codes(&codes);
        let mut scratch = MyersScratch::default();
        for _ in 0..200 {
            let a0 = (rng.next() as usize) % 250;
            let a1 = a0 + (rng.next() as usize) % (300 - a0);
            let b0 = (rng.next() as usize) % 250;
            let b1 = b0 + (rng.next() as usize) % (300 - b0);
            let got = edit_distance_with(s.packed(), (a0, a1), s.packed(), (b0, b1), &mut scratch);
            let want = ref_distance(&codes[a0..a1], &codes[b0..b1]);
            assert_eq!(got, want, "[{a0}..{a1}] vs [{b0}..{b1}]");
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let mut scratch = MyersScratch::default();
        let a = from_codes(&[0, 1, 2, 3].repeat(40)); // 160 bases: multiword
        let b = from_codes(&[0, 1, 2, 0].repeat(40));
        let first = edit_distance_with(a.packed(), (0, 160), b.packed(), (0, 160), &mut scratch);
        // Interleave a different-shape call, then repeat the first.
        edit_distance_with(a.packed(), (0, 10), b.packed(), (3, 90), &mut scratch);
        let again = edit_distance_with(a.packed(), (0, 160), b.packed(), (0, 160), &mut scratch);
        assert_eq!(first, again);
    }

    #[test]
    fn identity_bound_basics() {
        // Equal lengths, d substitutions: bound = 1 - d/(2n).
        assert_eq!(identity_upper_bound(100, 100, 0), 1.0);
        assert_eq!(identity_upper_bound(100, 100, 20), 0.9);
        // Length difference eats into the distance: n=100, m=90, d=10
        // (all deletions) still caps matches at 90 of 100 columns.
        assert_eq!(identity_upper_bound(100, 90, 10), 0.9);
    }

    #[test]
    fn gap_bound_matches_default_score_formula() {
        let nw = NwConfig::default(); // ma=1, mi=-2, ga=-3: M = max(6, 7) = 7
        assert!(prefilter_compatible(&nw));
        // gmax = floor((7d - dl) / 6)
        assert_eq!(optimal_gap_bound(&nw, 80, 80, 1), 1);
        assert_eq!(optimal_gap_bound(&nw, 80, 80, 3), 3);
        assert_eq!(optimal_gap_bound(&nw, 80, 80, 6), 7);
        assert_eq!(optimal_gap_bound(&nw, 80, 76, 4), 4); // (28-4)/6 = 4 = dl
        // Never below the length difference.
        assert!(optimal_gap_bound(&nw, 80, 72, 8) >= 8);
    }

    #[test]
    fn prefilter_incompatible_configs_detected() {
        assert!(!prefilter_compatible(&NwConfig {
            match_score: 0,
            ..NwConfig::default()
        }));
        assert!(!prefilter_compatible(&NwConfig {
            gap_score: 0,
            ..NwConfig::default()
        }));
        assert!(!prefilter_compatible(&NwConfig {
            mismatch_score: 2,
            ..NwConfig::default()
        }));
    }

    #[test]
    fn max_columns_bound_basics() {
        assert_eq!(max_columns_bound(30, 30, 0), 30);
        assert_eq!(max_columns_bound(30, 30, 3), 31); // parity floor
        assert_eq!(max_columns_bound(30, 30, 100), 60); // capped at n + m
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::{from_codes, ref_distance};
    use super::*;
    use proptest::prelude::*;

    fn codes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..4, 0..max_len)
    }

    proptest! {
        /// Myers (single- and multi-word) equals the reference DP.
        #[test]
        fn matches_reference_dp(a in codes_strategy(150), b in codes_strategy(150)) {
            let (da, db) = (from_codes(&a), from_codes(&b));
            let got = edit_distance_with(
                da.packed(), (0, da.len()), db.packed(), (0, db.len()),
                &mut MyersScratch::default(),
            );
            prop_assert_eq!(got, ref_distance(&a, &b));
        }

        /// The identity bound really is an upper bound on full-matrix NW
        /// identity (the banded verifier can only do worse or equal).
        #[test]
        fn identity_bound_is_sound(a in codes_strategy(40), b in codes_strategy(40)) {
            prop_assume!(!a.is_empty() || !b.is_empty());
            let (da, db) = (from_codes(&a), from_codes(&b));
            let d = edit_distance_with(
                da.packed(), (0, da.len()), db.packed(), (0, db.len()),
                &mut MyersScratch::default(),
            );
            let nw = NwConfig { band: a.len().max(b.len()).max(1), ..NwConfig::default() };
            let s = crate::nw::banded_global(&da, (0, da.len()), &db, (0, db.len()), &nw).unwrap();
            let bound = identity_upper_bound(a.len(), b.len(), d);
            prop_assert!(s.identity() <= bound, "identity {} > bound {}", s.identity(), bound);
            // Columns bound is sound too.
            let gmax = optimal_gap_bound(&nw, a.len(), b.len(), d);
            prop_assert!((s.columns as usize) <= max_columns_bound(a.len(), b.len(), gmax));
        }
    }
}
