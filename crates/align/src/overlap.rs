//! Overlap records: the edges-to-be of the overlap graph.

use fc_seq::ReadId;

/// How two reads overlap (paper §II-B: prefix/suffix dovetails and
/// containments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlapKind {
    /// The suffix of `a` aligns to the prefix of `b`; reading `a` then `b`
    /// walks left-to-right along the target sequence.
    SuffixPrefix,
    /// `b` is entirely contained within `a`.
    ContainsB,
    /// `a` is entirely contained within `b`.
    ContainedInB,
}

/// A verified overlap between two reads.
///
/// `a` and `b` are store read ids (each strand is its own read). For
/// [`OverlapKind::SuffixPrefix`], `shift` is how far `b`'s start lies to the
/// right of `a`'s start on the common layout — i.e. the number of `a` bases
/// that precede the overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overlap {
    /// First read.
    pub a: ReadId,
    /// Second read.
    pub b: ReadId,
    /// Geometry of the overlap.
    pub kind: OverlapKind,
    /// Offset of `b`'s first base relative to `a`'s first base (≥ 0 for
    /// dovetails; for containments, the offset of the inner read within the
    /// outer one).
    pub shift: u32,
    /// Alignment length in columns (the paper stores this as the edge
    /// weight).
    pub len: u32,
    /// Alignment identity in `[0, 1]`.
    pub identity: f64,
}

impl Overlap {
    /// For a dovetail overlap, the directed edge it induces in the overlap
    /// graph: `(source, target)` where the suffix of `source` matches the
    /// prefix of `target`. Containments induce no edge (they are removed in
    /// graph simplification, paper §V-B).
    pub fn edge(&self) -> Option<(ReadId, ReadId)> {
        match self.kind {
            OverlapKind::SuffixPrefix => Some((self.a, self.b)),
            _ => None,
        }
    }

    /// The contained read, if this is a containment overlap.
    pub fn contained(&self) -> Option<ReadId> {
        match self.kind {
            OverlapKind::ContainsB => Some(self.b),
            OverlapKind::ContainedInB => Some(self.a),
            OverlapKind::SuffixPrefix => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlap(kind: OverlapKind) -> Overlap {
        Overlap {
            a: ReadId(1),
            b: ReadId(2),
            kind,
            shift: 3,
            len: 50,
            identity: 0.95,
        }
    }

    #[test]
    fn dovetail_edge_direction() {
        assert_eq!(
            overlap(OverlapKind::SuffixPrefix).edge(),
            Some((ReadId(1), ReadId(2)))
        );
        assert_eq!(overlap(OverlapKind::ContainsB).edge(), None);
    }

    #[test]
    fn contained_read_identified() {
        assert_eq!(overlap(OverlapKind::ContainsB).contained(), Some(ReadId(2)));
        assert_eq!(
            overlap(OverlapKind::ContainedInB).contained(),
            Some(ReadId(1))
        );
        assert_eq!(overlap(OverlapKind::SuffixPrefix).contained(), None);
    }
}
