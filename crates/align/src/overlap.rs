//! Overlap records: the edges-to-be of the overlap graph.

use fc_seq::ReadId;

/// How two reads overlap (paper §II-B: prefix/suffix dovetails and
/// containments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlapKind {
    /// The suffix of `a` aligns to the prefix of `b`; reading `a` then `b`
    /// walks left-to-right along the target sequence.
    SuffixPrefix,
    /// `b` is entirely contained within `a`.
    ContainsB,
    /// `a` is entirely contained within `b`.
    ContainedInB,
}

/// A verified overlap between two reads.
///
/// `a` and `b` are store read ids (each strand is its own read). For
/// [`OverlapKind::SuffixPrefix`], `shift` is how far `b`'s start lies to the
/// right of `a`'s start on the common layout — i.e. the number of `a` bases
/// that precede the overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overlap {
    /// First read.
    pub a: ReadId,
    /// Second read.
    pub b: ReadId,
    /// Geometry of the overlap.
    pub kind: OverlapKind,
    /// Offset of `b`'s first base relative to `a`'s first base (≥ 0 for
    /// dovetails; for containments, the offset of the inner read within the
    /// outer one).
    pub shift: u32,
    /// Alignment length in columns (the paper stores this as the edge
    /// weight).
    pub len: u32,
    /// Alignment identity in `[0, 1]`.
    pub identity: f64,
}

impl Overlap {
    /// For a dovetail overlap, the directed edge it induces in the overlap
    /// graph: `(source, target)` where the suffix of `source` matches the
    /// prefix of `target`. Containments induce no edge (they are removed in
    /// graph simplification, paper §V-B).
    pub fn edge(&self) -> Option<(ReadId, ReadId)> {
        match self.kind {
            OverlapKind::SuffixPrefix => Some((self.a, self.b)),
            _ => None,
        }
    }

    /// The contained read, if this is a containment overlap.
    pub fn contained(&self) -> Option<ReadId> {
        match self.kind {
            OverlapKind::ContainsB => Some(self.b),
            OverlapKind::ContainedInB => Some(self.a),
            OverlapKind::SuffixPrefix => None,
        }
    }
}

impl fc_ckpt::Codec for OverlapKind {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u8(match self {
            OverlapKind::SuffixPrefix => 0,
            OverlapKind::ContainsB => 1,
            OverlapKind::ContainedInB => 2,
        });
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<OverlapKind, fc_ckpt::CkptError> {
        match r.u8()? {
            0 => Ok(OverlapKind::SuffixPrefix),
            1 => Ok(OverlapKind::ContainsB),
            2 => Ok(OverlapKind::ContainedInB),
            tag => Err(fc_ckpt::CkptError::Decode {
                detail: format!("invalid OverlapKind tag {tag}"),
            }),
        }
    }
}

impl fc_ckpt::Codec for Overlap {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u32(self.a.0);
        w.put_u32(self.b.0);
        self.kind.encode(w);
        w.put_u32(self.shift);
        w.put_u32(self.len);
        w.put_f64(self.identity);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<Overlap, fc_ckpt::CkptError> {
        Ok(Overlap {
            a: ReadId(r.u32()?),
            b: ReadId(r.u32()?),
            kind: OverlapKind::decode(r)?,
            shift: r.u32()?,
            len: r.u32()?,
            identity: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlap(kind: OverlapKind) -> Overlap {
        Overlap {
            a: ReadId(1),
            b: ReadId(2),
            kind,
            shift: 3,
            len: 50,
            identity: 0.95,
        }
    }

    #[test]
    fn dovetail_edge_direction() {
        assert_eq!(
            overlap(OverlapKind::SuffixPrefix).edge(),
            Some((ReadId(1), ReadId(2)))
        );
        assert_eq!(overlap(OverlapKind::ContainsB).edge(), None);
    }

    #[test]
    fn checkpoint_codec_round_trips_every_kind() {
        for kind in [
            OverlapKind::SuffixPrefix,
            OverlapKind::ContainsB,
            OverlapKind::ContainedInB,
        ] {
            let o = overlap(kind);
            let bytes = fc_ckpt::encode_to_vec(&o);
            let back: Overlap = fc_ckpt::decode_from_slice(&bytes).unwrap();
            assert_eq!(back, o);
        }
        // An unknown kind tag must be a decode error, not a panic.
        let mut w = fc_ckpt::Writer::new();
        w.put_u32(1);
        w.put_u32(2);
        w.put_u8(9);
        w.put_u32(0);
        w.put_u32(0);
        w.put_f64(0.0);
        assert!(fc_ckpt::decode_from_slice::<Overlap>(&w.into_bytes()).is_err());
    }

    #[test]
    fn contained_read_identified() {
        assert_eq!(overlap(OverlapKind::ContainsB).contained(), Some(ReadId(2)));
        assert_eq!(
            overlap(OverlapKind::ContainedInB).contained(),
            Some(ReadId(1))
        );
        assert_eq!(overlap(OverlapKind::SuffixPrefix).contained(), None);
    }
}
