//! Strain-mixture variant detection: the paper's proposed future-work
//! analysis (§VI-D) running on the distributed hybrid graph.
//!
//! Two strains of the same genome (~0.5 % divergence) are sequenced as a
//! 60/40 mixture; where the strains differ, the hybrid graph grows balanced
//! bubbles — variant sites — which the distributed scanner reports without
//! mutating the graph.
//!
//! ```text
//! cargo run --release --example strain_variants
//! ```

use focus_assembler::dist::cluster::{CostModel, SimCluster};
use focus_assembler::dist::variants::{allele_sequences, detect_variants, VariantConfig};
use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::graph::NodeId;
use focus_assembler::partition::{partition_graph_set, PartitionConfig};
use focus_assembler::seq::Read;
use focus_assembler::sim::genome::{mutate_genome, random_genome, GenomeConfig, MutationModel};
use focus_assembler::sim::reads::{simulate_reads, ReadSimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two strains sharing a mosaic structure: long conserved backbones
    //    (overlaps cross strains there, closing bubbles) interrupted by
    //    short divergent segments (~15% divergence — cross-strain overlaps
    //    fail the 90% identity threshold there, opening bubbles). This is
    //    the segmental pattern real strain variation shows.
    let strain_a = random_genome(
        &GenomeConfig {
            length: 15_000,
            ..Default::default()
        },
        5,
    );
    let strain_model = MutationModel {
        conserved_fraction: 0.85,
        conserved_divergence: 0.001,
        variable_divergence: 0.15,
        indel_rate: 0.0,
        segment_len: 400,
    };
    let strain_b = mutate_genome(&strain_a, &strain_model, 99);
    println!(
        "strains diverge at ~{} of {} positions",
        strain_a.hamming_distance(&strain_b),
        strain_a.len()
    );

    // 2. A 60/40 read mixture at ~16x combined coverage.
    let sim = ReadSimConfig {
        bad_tail_probability: 0.0,
        ..Default::default()
    };
    let mut reads: Vec<Read> = Vec::new();
    let mut origins = Vec::new();
    simulate_reads(&strain_a, 0, 1440, &sim, 11, "a", &mut reads, &mut origins)?;
    simulate_reads(&strain_b, 1, 960, &sim, 12, "b", &mut reads, &mut origins)?;
    println!("mixed {} reads (60% strain A, 40% strain B)", reads.len());

    // 3. Build the hybrid graph and partition it.
    let assembler = FocusAssembler::new(FocusConfig::default())?;
    let prepared = assembler.prepare(&reads)?;
    let k = 8;
    let partition = partition_graph_set(&prepared.hybrid.set, &PartitionConfig::new(k, 3))?;
    println!(
        "hybrid graph: {} nodes, {} directed edges, {} partitions",
        prepared.hybrid.node_count(),
        prepared.hybrid.directed.edge_count(),
        k
    );

    // 4. Distributed variant scan (read-only; one worker per partition).
    let support: Vec<u64> = prepared
        .hybrid
        .clusters
        .iter()
        .map(|c| c.len() as u64)
        .collect();
    let mut cluster = SimCluster::new(k, CostModel::default())?;
    let variants = detect_variants(
        &prepared.hybrid.directed,
        partition.finest(),
        k,
        &support,
        &VariantConfig::default(),
        &mut cluster,
    );

    println!("\ndetected {} candidate variant sites:", variants.len());
    let contigs: Vec<_> = (0..prepared.hybrid.node_count() as NodeId)
        .map(|v| prepared.hybrid.contig(v, &prepared.store))
        .collect();
    for (i, v) in variants.iter().take(10).enumerate() {
        let (major, minor) = allele_sequences(v, &contigs);
        println!(
            "  site {i}: opens at node {}, closes at node {}, support {}:{} (ratio {:.2}), \
             allele lengths {} / {}",
            v.opens_at,
            v.closes_at,
            v.major_support,
            v.minor_support,
            v.support_ratio(),
            major.len(),
            minor.len()
        );
    }
    println!(
        "\nscan used {} messages / {} payload bytes on the simulated cluster",
        cluster.messages(),
        cluster.bytes()
    );
    Ok(())
}
