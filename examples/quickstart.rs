//! Quickstart: simulate reads from a single genome and assemble them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::sim::single_genome_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a 20 kb genome sequenced at 12x with 100 bp reads.
    let dataset = single_genome_dataset(20_000, 12.0, 42)?;
    println!(
        "simulated {} reads ({} bases) from a {} bp genome",
        dataset.reads.len(),
        dataset.total_bases(),
        dataset.taxonomy.genera[0].genome.len()
    );

    // 2. Configure the assembler: defaults plus canonical-strand output.
    let config = FocusConfig {
        partitions: 8,
        dedup_rc: true,
        ..Default::default()
    };
    let assembler = FocusAssembler::new(config)?;

    // 3. Assemble.
    let result = assembler.assemble(&dataset.reads)?;

    // 4. Inspect the outcome.
    println!("\nassembly of {} contigs:", result.stats.num_contigs);
    println!("  N50        : {} bp", result.stats.n50);
    println!("  max contig : {} bp", result.stats.max_contig);
    println!("  total      : {} bp", result.stats.total_bases);
    println!(
        "  trimming removed {} transitive edges, {} contained contigs, {} error nodes",
        result.report.transitive_removed,
        result.report.contained_removed,
        result.report.error_nodes_removed
    );

    let mut lengths: Vec<usize> = result.contigs.iter().map(|c| c.len()).collect();
    lengths.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "  five longest contigs: {:?}",
        &lengths[..lengths.len().min(5)]
    );
    Ok(())
}
