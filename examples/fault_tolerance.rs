//! Fault tolerance: crash a worker rank mid-trimming and watch the
//! distributed stage recover — the final contigs are identical to the
//! fault-free run, only the virtual clock and the fault report differ.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use focus_assembler::dist::{DistributedHybrid, FaultPlan, PhaseId};
use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::partition::{partition_graph_set, PartitionConfig};
use focus_assembler::sim::single_genome_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate and prepare a dataset once (stages 1–5 are unaffected by
    //    faults; only the distributed stage runs on the virtual cluster).
    let dataset = single_genome_dataset(20_000, 12.0, 42)?;
    let config = FocusConfig::default();
    let assembler = FocusAssembler::new(config)?;
    let prepared = assembler.prepare(&dataset.reads)?;

    let k = 8;
    let partition = partition_graph_set(
        &prepared.hybrid.set,
        &PartitionConfig::new(k, config.partition_seed),
    )?;
    let parts = partition.finest().to_vec();
    let build =
        || DistributedHybrid::with_consensus(&prepared.hybrid, &prepared.store, parts.clone(), k);

    // 2. Fault-free baseline.
    let mut clean_dh = build()?;
    let clean = clean_dh.run(&config.dist)?;
    println!(
        "clean run : {} paths, trimming {:.0} + traversal {:.0} virtual units, {} messages",
        clean.paths.len(),
        clean.trimming_time,
        clean.traversal_time,
        clean.messages
    );

    // 3. Same pipeline, but rank 3 crashes during dead-end/bubble removal
    //    (mid-trimming). The master times the rank out, reassigns its
    //    partition to the least-loaded survivor and re-runs the lost scan.
    let plan = FaultPlan::single_crash(PhaseId::ErrorRemoval, 3);
    let mut faulty_dh = build()?;
    let faulty = faulty_dh.run_with_faults(&config.dist, plan)?;
    println!(
        "faulty run: {} paths, trimming {:.0} + traversal {:.0} virtual units, {} messages",
        faulty.paths.len(),
        faulty.trimming_time,
        faulty.traversal_time,
        faulty.messages
    );

    // 4. The fault report: what happened and what recovery cost.
    let f = &faulty.fault;
    println!("\nfault report:");
    println!("  crashes                  : {}", f.crashes);
    println!("  retries (retransmissions): {}", f.retries);
    println!("  retransmitted bytes      : {}", f.retransmitted_bytes);
    println!(
        "  speculative re-executions: {}",
        f.speculative_reexecutions
    );
    println!("  recovery virtual time    : {:.0}", f.recovery_time);
    println!("  degraded                 : {}", f.degraded);

    // 5. The invariant this whole subsystem is built around: worker scans
    //    are pure, so recovery by re-invocation reproduces the result
    //    exactly.
    assert_eq!(
        clean.paths, faulty.paths,
        "recovered run must match the clean run"
    );
    let contigs_match = clean
        .paths
        .iter()
        .zip(&faulty.paths)
        .all(|(a, b)| a.nodes == b.nodes);
    println!(
        "\ncontigs identical to fault-free run: {}",
        if contigs_match { "yes" } else { "NO — bug!" }
    );
    let overhead = (faulty.trimming_time + faulty.traversal_time)
        / (clean.trimming_time + clean.traversal_time);
    println!("virtual-time overhead of recovery : {:.2}x", overhead);
    Ok(())
}
