//! Partition explorer: compare partitioning the hybrid graph set against
//! the multilevel (overlap) graph set across partition counts — the paper's
//! central "biological knowledge pays" experiment, interactively sized.
//!
//! ```text
//! cargo run --release --example partition_explorer [-- <reads> <max_k>]
//! ```

use focus_assembler::dist::cluster::{schedule_phases, CostModel};
use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::partition::recursive::TaskKind;
use focus_assembler::partition::{
    edge_cut, partition_balance, partition_graph_set, PartitionConfig,
};
use focus_assembler::sim::single_genome_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n_reads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let max_k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);

    // One long genome makes the linearity structure obvious.
    let genome_len = n_reads * 100 / 10; // ~10x coverage
    let dataset = single_genome_dataset(genome_len, 10.0, 11)?;
    let assembler = FocusAssembler::new(FocusConfig::default())?;
    let prepared = assembler.prepare(&dataset.reads)?;

    println!(
        "overlap graph G0: {} nodes / {} edges; multilevel levels: {}; hybrid G'0: {} nodes",
        prepared.graph.undirected.node_count(),
        prepared.graph.undirected.edge_count(),
        prepared.multilevel.level_count(),
        prepared.hybrid.node_count(),
    );
    println!(
        "\n{:>4} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "k", "cut(hybrid)", "cut(overlap)", "bal(hyb)", "bal(ovl)", "time ratio"
    );

    let mut k = 2usize;
    while k <= max_k {
        let hybrid = partition_graph_set(&prepared.hybrid.set, &PartitionConfig::new(k, 5))?;
        let multi = partition_graph_set(&prepared.multilevel.set, &PartitionConfig::new(k, 5))?;

        // Compare cuts on the same graph (G0) by projecting the hybrid
        // assignment onto reads.
        let read_parts = prepared.hybrid.project_partition_to_reads(hybrid.finest());
        let cut_h = edge_cut(&prepared.graph.undirected, &read_parts);
        let cut_m = edge_cut(&prepared.graph.undirected, multi.finest());
        let bal_h = partition_balance(&prepared.graph.undirected, &read_parts, k);
        let bal_m = partition_balance(&prepared.graph.undirected, multi.finest(), k);

        // Virtual runtimes on k/2 simulated processors.
        let phases = |tasks: &[focus_assembler::partition::TaskRecord]| {
            let mut steps: Vec<Vec<u64>> = Vec::new();
            let mut kway = Vec::new();
            for t in tasks {
                match t.kind {
                    TaskKind::Bisect { step, .. } => {
                        while steps.len() <= step {
                            steps.push(Vec::new());
                        }
                        steps[step].push(t.work);
                    }
                    TaskKind::KwayLevel { .. } => kway.push(t.work),
                }
            }
            if !kway.is_empty() {
                steps.push(kway);
            }
            steps
        };
        let procs = (k / 2).max(1);
        let t_h = schedule_phases(&phases(&hybrid.tasks), procs, CostModel::default());
        let t_m = schedule_phases(&phases(&multi.tasks), procs, CostModel::default());

        println!(
            "{:>4} {:>14} {:>14} {:>10.3} {:>10.3} {:>10.2}",
            k,
            cut_h,
            cut_m,
            bal_h,
            bal_m,
            t_h / t_m
        );
        k *= 2;
    }
    println!("\n(time ratio < 1 means the hybrid set partitions faster — the paper's claim)");
    Ok(())
}
