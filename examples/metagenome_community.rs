//! Metagenome assembly + community structure: the paper's gut-microbiome
//! scenario end to end (assembly, classification, partition heat map).
//!
//! ```text
//! cargo run --release --example metagenome_community
//! ```

use focus_assembler::classify::{
    ClassifierAccuracy, GenusDistribution, KmerClassifier, PhylumCoclustering,
};
use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::partition::{partition_graph_set, PartitionConfig};
use focus_assembler::seq::DnaString;
use focus_assembler::sim::{generate_dataset, DatasetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a gut-like community: ten genera over three phyla,
    //    skewed abundances, 100 bp reads.
    let mut ds_config = DatasetConfig::paper_scale(1.0);
    let dataset = generate_dataset("gut", &ds_config, 7)?;
    ds_config.total_reads = dataset.reads.len();
    println!("community of {} genera:", dataset.taxonomy.genus_count());
    for (gi, genus) in dataset.taxonomy.genera.iter().enumerate() {
        println!(
            "  {:<18} ({:<14}) abundance {:.3}",
            genus.name,
            genus.phylum,
            dataset.community.abundance(gi)
        );
    }

    // 2. Run pipeline stages 1-5 once, then partition 16 ways.
    let assembler = FocusAssembler::new(FocusConfig::default())?;
    let prepared = assembler.prepare(&dataset.reads)?;
    println!(
        "\noverlap graph: {} nodes, {} edges -> hybrid graph: {} nodes",
        prepared.graph.undirected.node_count(),
        prepared.graph.undirected.edge_count(),
        prepared.hybrid.node_count()
    );
    let result = assembler.assemble_prepared(&prepared, 16)?;
    println!(
        "assembled {} contigs, N50 {} bp, max {} bp",
        result.stats.num_contigs, result.stats.n50, result.stats.max_contig
    );

    // 3. Classify reads against the genus reference genomes and build the
    //    genus x partition distribution (paper Fig. 7).
    let genomes: Vec<DnaString> = dataset
        .taxonomy
        .genera
        .iter()
        .map(|g| g.genome.clone())
        .collect();
    let classifier = KmerClassifier::build(&genomes, 21)?;
    let labels = classifier.classify_all(&dataset.reads);
    let accuracy =
        ClassifierAccuracy::assess(&labels, &dataset.origins, dataset.taxonomy.genus_count())?;
    println!(
        "\nclassifier check vs ground truth: accuracy {:.3}, unclassified {:.3}",
        accuracy.accuracy, accuracy.unclassified_rate
    );

    let partition = partition_graph_set(&prepared.hybrid.set, &PartitionConfig::new(16, 3))?;
    let node_parts = prepared
        .hybrid
        .project_partition_to_reads(partition.finest());
    let genera: Vec<String> = dataset
        .taxonomy
        .genera
        .iter()
        .map(|g| g.name.clone())
        .collect();
    let dist = GenusDistribution::build(&prepared.store, &node_parts, &labels, &genera, 16)?;

    println!("\ngenus x partition heat map (darker = more of the genus's reads):");
    print!("{}", focus_assembler::classify::render_text(&dist));

    let phylum_of: Vec<usize> = dataset
        .taxonomy
        .genera
        .iter()
        .map(|g| g.phylum_index)
        .collect();
    let cc = PhylumCoclustering::compute(&dist, &phylum_of);
    println!(
        "within-phylum co-clustering {:.3} vs cross-phylum {:.3}",
        cc.within_phylum, cc.cross_phylum
    );
    Ok(())
}
