//! File-based pipeline: write simulated reads to FASTQ, read them back,
//! assemble, and write the contigs as FASTA — the shape of a real workflow.
//!
//! ```text
//! cargo run --release --example fastq_pipeline [-- /tmp/workdir]
//! ```

use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::seq::{fasta, fastq, Read};
use focus_assembler::sim::single_genome_dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir)?;
    let reads_path = dir.join("focus_example_reads.fastq");
    let contigs_path = dir.join("focus_example_contigs.fasta");

    // 1. Simulate and write FASTQ (with real quality strings).
    let dataset = single_genome_dataset(10_000, 10.0, 3)?;
    fastq::write(
        BufWriter::new(File::create(&reads_path)?),
        &dataset.reads,
        30,
    )?;
    println!(
        "wrote {} reads to {}",
        dataset.reads.len(),
        reads_path.display()
    );

    // 2. Read the FASTQ back — the assembler consumes plain `Read`s, so any
    //    FASTQ source works the same way.
    let reads: Vec<Read> = fastq::parse(BufReader::new(File::open(&reads_path)?))?;
    assert_eq!(reads.len(), dataset.reads.len());

    // 3. Assemble with quality trimming enabled (the simulated reads carry
    //    degraded 3' tails for the trimmer to remove).
    let mut config = FocusConfig::default();
    config.trim.window_len = 10;
    config.trim.min_quality = 15.0;
    config.dedup_rc = true;
    let assembler = FocusAssembler::new(config)?;
    let result = assembler.assemble(&reads)?;
    println!(
        "assembled {} contigs (N50 {} bp, max {} bp)",
        result.stats.num_contigs, result.stats.n50, result.stats.max_contig
    );

    // 4. Write contigs as FASTA.
    let contig_reads: Vec<Read> = result
        .contigs
        .iter()
        .enumerate()
        .map(|(i, c)| Read::new(format!("contig_{i} len={}", c.len()), c.clone()))
        .collect();
    fasta::write(
        BufWriter::new(File::create(&contigs_path)?),
        &contig_reads,
        70,
    )?;
    println!("wrote contigs to {}", contigs_path.display());
    Ok(())
}
