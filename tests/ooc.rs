//! Out-of-core assembly invariants: the spilled pipeline is the in-core
//! pipeline, bit for bit.
//!
//! Contract under test (ISSUE 10): contigs, traversal paths, fault
//! reports and logical-clock metric snapshots are byte-identical across
//! {in-core, spilled} × any memory budget × any thread count, with or
//! without read staging; every injected filesystem fault mid-spill or
//! mid-merge is *detected* (CRC) and answered by recomputation or a
//! one-warning graceful in-core fallback — never a panic, never a wrong
//! contig; a killed run resumes staged pages and phase checkpoints; and
//! the budget gate rejects in-core runs that genuinely do not fit while
//! the spilled path completes under the same budget.

use focus_assembler::ckpt::{FsFaultPlan, ReadFault, WriteFault};
use focus_assembler::focus::{
    AssemblyOutcome, AssemblyResult, CheckpointOptions, CkptPhase, FaultInjection, FocusAssembler,
    FocusConfig, FocusError, OocOptions,
};
use focus_assembler::obs::ObsOptions;
use focus_assembler::seq::{fastq, Base, DnaString, Read, ReadStore};
use proptest::prelude::*;
use std::io::BufReader;
use std::path::{Path, PathBuf};

fn genome(len: usize, seed: u64) -> DnaString {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Base::from_code((state >> 5) as u8 & 3)
        })
        .collect()
}

fn tiled_reads(len: usize, seed: u64) -> Vec<Read> {
    let g = genome(len, seed);
    let (read_len, stride) = (100usize, 50usize);
    let mut reads = Vec::new();
    let mut start = 0;
    while start + read_len <= g.len() {
        reads.push(Read::new(
            format!("r{start}"),
            g.slice(start, start + read_len),
        ));
        start += stride;
    }
    reads
}

/// Logical-clock observability + deterministic dist-stage fault injection,
/// matching the chaos harness so snapshots are rich.
fn ooc_config(threads: usize) -> FocusConfig {
    let mut c = FocusConfig {
        partitions: 4,
        threads,
        observability: ObsOptions::logical(),
        ..Default::default()
    };
    c.trim.min_read_len = 30;
    c.overlap.min_overlap_len = 40;
    c.fault = Some(FaultInjection {
        seed: 42,
        rates: focus_assembler::dist::FaultRates {
            crash: 0.2,
            drop: 0.3,
            ..Default::default()
        },
    });
    c
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-ooc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes reads to a FASTQ file and parses them back, so the in-core
/// baseline sees exactly what the streaming path will read (including the
/// synthesized quality lines).
fn fastq_fixture(tag: &str, reads: &[Read]) -> (PathBuf, Vec<Read>) {
    let dir = temp_dir(&format!("input-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("reads.fastq");
    let mut out = Vec::new();
    for read in reads {
        fastq::write_read(&mut out, read, 30).unwrap();
    }
    std::fs::write(&path, &out).unwrap();
    let parsed: Vec<Read> = fastq::Reader::new(BufReader::new(std::fs::File::open(&path).unwrap()))
        .collect::<Result<_, _>>()
        .unwrap();
    (path, parsed)
}

fn completed(outcome: AssemblyOutcome) -> AssemblyResult {
    match outcome {
        AssemblyOutcome::Completed(r) => r,
        AssemblyOutcome::Stopped(p) => panic!("unexpected stop after {p:?}"),
    }
}

fn run_clean(reads: &[Read], threads: usize) -> (AssemblyResult, String) {
    let assembler = FocusAssembler::new(ooc_config(threads)).unwrap();
    let result = assembler.assemble(reads).unwrap();
    let snapshot = assembler.recorder().snapshot_json();
    (result, snapshot)
}

fn run_ooc(
    config: FocusConfig,
    input: &Path,
    opts: &CheckpointOptions,
    ooc: &OocOptions,
) -> (FocusAssembler, Result<AssemblyOutcome, FocusError>) {
    let assembler = FocusAssembler::new(config).unwrap();
    let outcome = assembler.assemble_fastq_ooc(input, opts, ooc);
    (assembler, outcome)
}

/// The headline invariant: {in-core, spilled} × budget × threads ×
/// staging all produce byte-identical contigs, paths, fault reports and
/// logical metric snapshots.
#[test]
fn spilled_assembly_is_bit_identical_to_in_core() {
    let (input, parsed) = fastq_fixture("ident", &tiled_reads(2500, 11));
    let (clean, clean_snapshot) = run_clean(&parsed, 1);
    for threads in [1usize, 2, 4, 8] {
        for stage_reads in [true, false] {
            for budget in [None, Some(1u64 << 30)] {
                let tag = format!("ident-{threads}-{stage_reads}-{}", budget.is_some());
                let spill = temp_dir(&tag);
                let mut config = ooc_config(threads);
                config.memory_budget = budget;
                let mut ooc = OocOptions::in_dir(&spill);
                ooc.stage_reads = stage_reads;
                let (assembler, outcome) =
                    run_ooc(config, &input, &CheckpointOptions::default(), &ooc);
                let result = completed(outcome.unwrap());
                assert_eq!(result.contigs, clean.contigs, "{tag}");
                assert_eq!(result.report.paths, clean.report.paths, "{tag}");
                assert_eq!(result.report.fault, clean.report.fault, "{tag}");
                assert_eq!(
                    assembler.recorder().snapshot_json(),
                    clean_snapshot,
                    "snapshot diverged: {tag}"
                );
                // The spill layer actually ran: every subset pair spilled.
                let counters = assembler.recorder().snapshot().counters;
                assert!(counters["ooc.spill.runs"] >= 1, "{tag}: nothing spilled");
                assert_eq!(counters.get("ooc.spill.degraded"), None, "{tag}");
                let _ = std::fs::remove_dir_all(&spill);
            }
        }
    }
}

/// Every write fault the fault plan can inject mid-spill (torn file, bit
/// flip, ENOSPC) and every read fault mid-merge (short read, bit flip) is
/// detected and answered — recomputation for corruption, one-warning
/// in-core fallback for write failure. Contigs and snapshots never change.
#[test]
fn every_spill_fault_is_detected_and_answered() {
    let (input, parsed) = fastq_fixture("fault", &tiled_reads(2500, 11));
    let (clean, clean_snapshot) = run_clean(&parsed, 2);

    let write_faults = [
        ("torn", WriteFault::Torn),
        ("bitflip", WriteFault::BitFlip { bit: 12_345 }),
        ("enospc", WriteFault::Enospc),
    ];
    for (name, fault) in write_faults {
        for op in [0u64, 3] {
            let tag = format!("wf-{name}-{op}");
            let spill = temp_dir(&tag);
            let mut ooc = OocOptions::in_dir(&spill);
            ooc.fs_faults = FsFaultPlan::none().fail_write(op, fault);
            let (assembler, outcome) =
                run_ooc(ooc_config(2), &input, &CheckpointOptions::default(), &ooc);
            let result = completed(outcome.unwrap());
            assert_eq!(result.contigs, clean.contigs, "{tag}");
            assert_eq!(assembler.recorder().snapshot_json(), clean_snapshot, "{tag}");
            let counters = assembler.recorder().snapshot().counters;
            let detected = counters.get("ooc.spill.rejected").copied().unwrap_or(0)
                + counters.get("ooc.spill.recomputed").copied().unwrap_or(0)
                + counters.get("ooc.spill.degraded").copied().unwrap_or(0);
            assert!(detected >= 1, "{tag}: fault went unnoticed");
            let _ = std::fs::remove_dir_all(&spill);
        }
    }

    let read_faults = [
        ("short", ReadFault::Short),
        ("bitflip", ReadFault::BitFlip { bit: 4_321 }),
    ];
    for (name, fault) in read_faults {
        for op in [0u64, 2] {
            let tag = format!("rf-{name}-{op}");
            let spill = temp_dir(&tag);
            let mut ooc = OocOptions::in_dir(&spill);
            ooc.fs_faults = FsFaultPlan::none().fail_read(op, fault);
            let (assembler, outcome) =
                run_ooc(ooc_config(2), &input, &CheckpointOptions::default(), &ooc);
            let result = completed(outcome.unwrap());
            assert_eq!(result.contigs, clean.contigs, "{tag}");
            assert_eq!(assembler.recorder().snapshot_json(), clean_snapshot, "{tag}");
            let counters = assembler.recorder().snapshot().counters;
            assert!(
                counters.get("ooc.spill.rejected").copied().unwrap_or(0) >= 1,
                "{tag}: corruption never detected"
            );
            assert!(
                counters.get("ooc.spill.recomputed").copied().unwrap_or(0) >= 1,
                "{tag}: rejected run never recomputed"
            );
            let _ = std::fs::remove_dir_all(&spill);
        }
    }
}

/// Killing an out-of-core run after any phase boundary and resuming
/// reproduces the clean run bit for bit: staged read pages replace the
/// Preprocess checkpoint, later phases resume through the existing
/// manifest.
#[test]
fn killed_ooc_run_resumes_pages_and_checkpoints() {
    let (input, parsed) = fastq_fixture("kill", &tiled_reads(2500, 11));
    let (clean, clean_snapshot) = run_clean(&parsed, 2);
    for &phase in &CkptPhase::ALL {
        let tag = format!("kill-{}", phase.name());
        let spill = temp_dir(&format!("{tag}-spill"));
        let ckpt = temp_dir(&format!("{tag}-ckpt"));
        let mut opts = CheckpointOptions::in_dir(&ckpt);
        opts.stop_after = Some(phase);
        let ooc = OocOptions::in_dir(&spill);
        let (_, stopped) = run_ooc(ooc_config(2), &input, &opts, &ooc);
        match stopped.unwrap() {
            AssemblyOutcome::Stopped(p) => assert_eq!(p, phase),
            AssemblyOutcome::Completed(_) => panic!("{tag}: did not stop"),
        }
        opts.stop_after = None;
        opts.resume = true;
        let (assembler, outcome) = run_ooc(ooc_config(2), &input, &opts, &ooc);
        let resumed = completed(outcome.unwrap());
        assert_eq!(resumed.contigs, clean.contigs, "{tag}");
        assert_eq!(resumed.report.paths, clean.report.paths, "{tag}");
        assert_eq!(
            assembler.recorder().snapshot_json(),
            clean_snapshot,
            "{tag}"
        );
        // The resumed ingest adopted the staged pages instead of
        // re-trimming the input.
        let counters = assembler.recorder().snapshot().counters;
        assert!(
            counters.get("ooc.ingest.resumed").copied().unwrap_or(0) >= 1,
            "{tag}: staged pages were not adopted"
        );
        let _ = std::fs::remove_dir_all(&spill);
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

/// Resuming with only spilled alignment runs (no phase checkpoints at
/// all) skips the pair recomputation yet reproduces the contigs exactly —
/// the spill files are verified (CRC + fingerprint) before being trusted.
#[test]
fn spill_only_resume_skips_recompute_and_reproduces_contigs() {
    let (input, parsed) = fastq_fixture("sresume", &tiled_reads(2500, 11));
    let (clean, _) = run_clean(&parsed, 2);
    let spill = temp_dir("sresume-spill");
    let ooc = OocOptions::in_dir(&spill);
    let (first, outcome) = run_ooc(ooc_config(2), &input, &CheckpointOptions::default(), &ooc);
    assert_eq!(completed(outcome.unwrap()).contigs, clean.contigs);
    let spilled = first.recorder().snapshot().counters["ooc.spill.runs"];
    assert!(spilled >= 1);

    let mut opts = CheckpointOptions::default();
    opts.resume = true;
    let (second, outcome) = run_ooc(ooc_config(2), &input, &opts, &ooc);
    assert_eq!(completed(outcome.unwrap()).contigs, clean.contigs);
    let counters = second.recorder().snapshot().counters;
    // Nothing was spilled the second time: every pair verified on disk.
    assert_eq!(counters.get("ooc.spill.runs"), None, "pairs were recomputed");
    let _ = std::fs::remove_dir_all(&spill);
}

/// The budget gate: a budget the in-core pipeline cannot satisfy (it must
/// hold raw input + store + overlaps) still admits the spilled pipeline,
/// which streams the input and pages the alignment — and the output under
/// pressure is byte-identical. A budget nothing fits under fails both
/// ways, typed.
#[test]
fn budget_rejects_in_core_but_admits_spilled() {
    let (input, parsed) = fastq_fixture("budget", &tiled_reads(2500, 11));
    let mut config = ooc_config(2);
    config.subsets = 8;

    // The in-core ledger requirement, reconstructed from its three
    // charges: raw input reads + preprocessed store + verified overlaps.
    let assembler = FocusAssembler::new(config).unwrap();
    let prep = assembler.prepare(&parsed).unwrap();
    let clean = assembler.assemble_prepared(&prep, config.partitions).unwrap();
    let input_bytes: usize = parsed.iter().map(Read::approx_bytes).sum();
    let store_bytes = ReadStore::preprocess(&parsed, &config.trim).unwrap().approx_bytes();
    let overlap_bytes =
        prep.overlaps.len() * std::mem::size_of::<focus_assembler::align::Overlap>();
    let in_core_needs = (input_bytes + store_bytes + overlap_bytes) as u64;

    // Just below the in-core requirement: in-core is rejected, typed.
    config.memory_budget = Some(in_core_needs - 1);
    let capped = FocusAssembler::new(config).unwrap();
    match capped.prepare(&parsed) {
        Err(FocusError::BudgetExceeded(e)) => {
            assert!(e.limit > 0);
            assert!(e.requested + e.used > e.limit);
        }
        other => panic!("in-core under budget cap: {other:?}"),
    }

    // The spilled path fits the same budget and reproduces the output.
    let spill = temp_dir("budget-spill");
    let ooc = OocOptions::in_dir(&spill);
    let (_, outcome) = run_ooc(config, &input, &CheckpointOptions::default(), &ooc);
    let result = completed(outcome.unwrap());
    assert_eq!(result.contigs, clean.contigs);
    let _ = std::fs::remove_dir_all(&spill);

    // A budget nothing fits under is a typed error on both paths, not a
    // panic or an OOM.
    config.memory_budget = Some(4096);
    let tiny = FocusAssembler::new(config).unwrap();
    assert!(matches!(
        tiny.prepare(&parsed),
        Err(FocusError::BudgetExceeded(_))
    ));
    let spill = temp_dir("budget-tiny");
    let (_, outcome) = run_ooc(
        config,
        &input,
        &CheckpointOptions::default(),
        &OocOptions::in_dir(&spill),
    );
    assert!(matches!(outcome, Err(FocusError::BudgetExceeded(_))));
    let _ = std::fs::remove_dir_all(&spill);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline invariant as a property: random genomes, random
    /// thread counts — spilled output and logical snapshot equal in-core.
    #[test]
    fn spilled_identity_holds_for_random_genomes(
        seed in 1u64..1000,
        threads_ix in 0usize..4,
    ) {
        let threads = [1usize, 2, 4, 8][threads_ix];
        let (input, parsed) = fastq_fixture(&format!("prop-{seed}-{threads}"), &tiled_reads(2000, seed));
        let (clean, clean_snapshot) = run_clean(&parsed, threads);
        let spill = temp_dir(&format!("prop-spill-{seed}-{threads}"));
        let mut config = ooc_config(threads);
        config.memory_budget = Some(1 << 30);
        let (assembler, outcome) =
            run_ooc(config, &input, &CheckpointOptions::default(), &OocOptions::in_dir(&spill));
        let result = completed(outcome.unwrap());
        prop_assert_eq!(&result.contigs, &clean.contigs);
        prop_assert_eq!(assembler.recorder().snapshot_json(), clean_snapshot);
        let _ = std::fs::remove_dir_all(&spill);
        let _ = std::fs::remove_dir_all(input.parent().unwrap());
    }
}
