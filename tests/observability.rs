//! End-to-end observability tests: metric-snapshot determinism across
//! thread counts (the fc-obs logical-clock contract), sink validity against
//! the pure-std schema checkers, and the disabled-recorder null guarantee.

use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::obs::{
    check_chrome_trace, check_jsonl_events, check_metrics_snapshot, human_report,
    write_chrome_trace, write_jsonl, ObsOptions,
};
use focus_assembler::seq::Read;
use proptest::prelude::*;

fn genome(len: usize, seed: u64) -> focus_assembler::seq::DnaString {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            focus_assembler::seq::Base::from_code((state >> 5) as u8 & 3)
        })
        .collect()
}

fn tiled_reads(len: usize, seed: u64) -> Vec<Read> {
    let g = genome(len, seed);
    let (read_len, stride) = (100usize, 50usize);
    let mut reads = Vec::new();
    let mut start = 0;
    while start + read_len <= g.len() {
        reads.push(Read::new(
            format!("r{start}"),
            g.slice(start, start + read_len),
        ));
        start += stride;
    }
    reads
}

fn obs_config(threads: usize) -> FocusConfig {
    let mut config = FocusConfig {
        partitions: 4,
        threads,
        observability: ObsOptions::logical(),
        ..Default::default()
    };
    config.trim.min_read_len = 30;
    config.overlap.min_overlap_len = 40;
    config
}

/// Assembles and returns the logical-clock metric snapshot JSON.
fn snapshot_at(reads: &[Read], threads: usize) -> String {
    let assembler = FocusAssembler::new(obs_config(threads)).unwrap();
    assembler.assemble(reads).unwrap();
    assembler.recorder().snapshot_json()
}

#[test]
fn all_three_sinks_validate_against_the_schema_checkers() {
    let reads = tiled_reads(2000, 3);
    let assembler = FocusAssembler::new(obs_config(2)).unwrap();
    assembler.assemble(&reads).unwrap();
    let rec = assembler.recorder();

    let events = rec.events();
    assert!(!events.is_empty());
    let n = check_jsonl_events(&write_jsonl(&events)).unwrap();
    assert_eq!(n, events.len());
    let n = check_chrome_trace(&write_chrome_trace(&events)).unwrap();
    assert_eq!(n, events.len());
    check_metrics_snapshot(&rec.snapshot_json()).unwrap();

    let report = human_report(&rec.snapshot());
    assert!(report.contains("counters"));
    assert!(report.contains("align.candidates"));
}

#[test]
fn disabled_recorder_produces_empty_everything() {
    let reads = tiled_reads(1500, 5);
    let mut config = obs_config(2);
    config.observability = ObsOptions::default();
    let assembler = FocusAssembler::new(config).unwrap();
    assembler.assemble(&reads).unwrap();
    assert!(assembler.recorder().events().is_empty());
    assert!(assembler.recorder().snapshot().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole determinism contract: with logical-clock observability,
    /// two runs at *any* `--threads` setting produce byte-identical metric
    /// snapshots. Genome seeds vary per case; every thread count in
    /// {1, 2, 4, 8} must agree with the serial baseline.
    #[test]
    fn metric_snapshots_are_byte_identical_across_thread_counts(seed in 1u64..1000) {
        let reads = tiled_reads(1800, seed);
        let baseline = snapshot_at(&reads, 1);
        prop_assert!(baseline.contains("\"schema\": \"focus-metrics-v1\""));
        // Scheduling metrics never leak into the deterministic snapshot.
        prop_assert!(!baseline.contains("sched."));
        for threads in [2usize, 4, 8] {
            let snapshot = snapshot_at(&reads, threads);
            prop_assert_eq!(
                &snapshot,
                &baseline,
                "snapshot at {} threads diverged from serial",
                threads
            );
        }
    }
}
