//! End-to-end observability tests: metric-snapshot determinism across
//! thread counts (the fc-obs logical-clock contract), sink validity against
//! the pure-std schema checkers, and the disabled-recorder null guarantee.

use focus_assembler::focus::{FaultInjection, FocusAssembler, FocusConfig};
use focus_assembler::obs::{
    check_chrome_trace, check_jsonl_events, check_metrics_snapshot, human_report,
    profile_chrome_trace, write_chrome_trace, write_jsonl, ObsOptions, ProfileReport, SegmentKind,
};
use focus_assembler::seq::Read;
use proptest::prelude::*;

fn genome(len: usize, seed: u64) -> focus_assembler::seq::DnaString {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            focus_assembler::seq::Base::from_code((state >> 5) as u8 & 3)
        })
        .collect()
}

fn tiled_reads(len: usize, seed: u64) -> Vec<Read> {
    let g = genome(len, seed);
    let (read_len, stride) = (100usize, 50usize);
    let mut reads = Vec::new();
    let mut start = 0;
    while start + read_len <= g.len() {
        reads.push(Read::new(
            format!("r{start}"),
            g.slice(start, start + read_len),
        ));
        start += stride;
    }
    reads
}

fn obs_config(threads: usize) -> FocusConfig {
    let mut config = FocusConfig {
        partitions: 4,
        threads,
        observability: ObsOptions::logical(),
        ..Default::default()
    };
    config.trim.min_read_len = 30;
    config.overlap.min_overlap_len = 40;
    config
}

/// Assembles and returns the logical-clock metric snapshot JSON.
fn snapshot_at(reads: &[Read], threads: usize) -> String {
    let assembler = FocusAssembler::new(obs_config(threads)).unwrap();
    assembler.assemble(reads).unwrap();
    assembler.recorder().snapshot_json()
}

/// `obs_config` plus deterministic rank crashes and message drops, so the
/// trace contains retransmissions, speculative backups and recovery flows.
fn faulted_config(threads: usize, seed: u64) -> FocusConfig {
    let mut c = obs_config(threads);
    c.fault = Some(FaultInjection {
        seed,
        rates: focus_assembler::dist::FaultRates {
            crash: 0.2,
            drop: 0.3,
            ..Default::default()
        },
    });
    c
}

/// Assembles under a FaultPlan and returns the causal Chrome trace, or
/// `None` when the schedule killed the whole cluster (retry budgets are
/// finite, so hostile seeds can legitimately fail the run).
fn faulted_trace(reads: &[Read], threads: usize, seed: u64) -> Option<String> {
    let assembler = FocusAssembler::new(faulted_config(threads, seed)).unwrap();
    assembler.assemble(reads).ok()?;
    Some(write_chrome_trace(&assembler.recorder().events()))
}

/// The causality invariants every reconstructed profile must satisfy.
/// `profile_chrome_trace` succeeding already proves the span DAG is
/// acyclic and every causal edge references an emitted flow origin.
fn assert_causality_invariants(report: &ProfileReport) {
    // Critical-path segments are chronological and pairwise disjoint.
    for pair in report.critical_path.windows(2) {
        assert!(
            pair[0].end <= pair[1].start,
            "overlapping segments: {pair:?}"
        );
    }
    // The gating chain can never exceed the run's wall clock...
    let total = report.critical_path_total();
    assert!(
        total <= report.run_wall,
        "critical path {total} > run wall {}",
        report.run_wall
    );
    // ...and must cover at least the longest single top-level phase (the
    // pipeline runs its two root spans back to back).
    let longest_phase = ["pipeline.prepare", "pipeline.assemble"]
        .iter()
        .filter_map(|name| report.by_name.get(*name))
        .map(|agg| agg.total)
        .max()
        .unwrap_or(0);
    assert!(
        longest_phase > 0,
        "trace is missing the pipeline root spans"
    );
    assert!(
        total >= longest_phase,
        "critical path {total} < longest phase {longest_phase}"
    );
    // Attribution buckets partition the critical path exactly.
    let attributed: u64 = [SegmentKind::Compute, SegmentKind::Wait, SegmentKind::Retry]
        .iter()
        .map(|k| report.attributed(*k))
        .sum();
    assert_eq!(attributed, total, "attribution must cover the whole path");
    assert!(report.attributed(SegmentKind::Compute) > 0);
}

#[test]
fn faulted_runs_profile_cleanly_at_every_thread_count() {
    let reads = tiled_reads(1800, 11);
    for threads in [1usize, 2, 4, 8] {
        let trace = faulted_trace(&reads, threads, 42).expect("seed 42 completes");
        let report =
            profile_chrome_trace(&trace).unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        assert!(report.flows > 0, "faulted run must emit causal edges");
        assert_causality_invariants(&report);
        // The machine report is byte-stable across reruns of the same trace.
        let again = profile_chrome_trace(&trace).unwrap();
        assert_eq!(report.to_json(), again.to_json());
    }
}

#[test]
fn wall_clock_traces_profile_to_a_full_depth_critical_path() {
    // The CLI records real time, where a flow's departure and arrival can
    // collapse into one microsecond; the profiler must still walk the
    // whole run, not stall on the same-timestamp causal edges.
    let reads = tiled_reads(1800, 11);
    let mut config = obs_config(4);
    config.observability = ObsOptions::wall_clock();
    let assembler = FocusAssembler::new(config).unwrap();
    assembler.assemble(&reads).unwrap();
    let trace = write_chrome_trace(&assembler.recorder().events());
    let report = profile_chrome_trace(&trace).expect("profiles");
    assert_causality_invariants(&report);
}

#[test]
fn all_three_sinks_validate_against_the_schema_checkers() {
    let reads = tiled_reads(2000, 3);
    let assembler = FocusAssembler::new(obs_config(2)).unwrap();
    assembler.assemble(&reads).unwrap();
    let rec = assembler.recorder();

    let events = rec.events();
    assert!(!events.is_empty());
    let n = check_jsonl_events(&write_jsonl(&events)).unwrap();
    assert_eq!(n, events.len());
    let n = check_chrome_trace(&write_chrome_trace(&events)).unwrap();
    assert_eq!(n, events.len());
    check_metrics_snapshot(&rec.snapshot_json()).unwrap();

    let report = human_report(&rec.snapshot());
    assert!(report.contains("counters"));
    assert!(report.contains("align.candidates"));
}

#[test]
fn disabled_recorder_produces_empty_everything() {
    let reads = tiled_reads(1500, 5);
    let mut config = obs_config(2);
    config.observability = ObsOptions::default();
    let assembler = FocusAssembler::new(config).unwrap();
    assembler.assemble(&reads).unwrap();
    assert!(assembler.recorder().events().is_empty());
    assert!(assembler.recorder().snapshot().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole determinism contract: with logical-clock observability,
    /// two runs at *any* `--threads` setting produce byte-identical metric
    /// snapshots. Genome seeds vary per case; every thread count in
    /// {1, 2, 4, 8} must agree with the serial baseline.
    #[test]
    fn metric_snapshots_are_byte_identical_across_thread_counts(seed in 1u64..1000) {
        let reads = tiled_reads(1800, seed);
        let baseline = snapshot_at(&reads, 1);
        prop_assert!(baseline.contains("\"schema\": \"focus-metrics-v1\""));
        // Scheduling metrics never leak into the deterministic snapshot.
        prop_assert!(!baseline.contains("sched."));
        for threads in [2usize, 4, 8] {
            let snapshot = snapshot_at(&reads, threads);
            prop_assert_eq!(
                &snapshot,
                &baseline,
                "snapshot at {} threads diverged from serial",
                threads
            );
        }
    }

    /// Causality invariants hold for arbitrary fault schedules: the span
    /// DAG reconstructs acyclically, the critical path stays within the
    /// run wall and above the longest phase, and the machine report is
    /// byte-stable — at every thread count.
    #[test]
    fn causal_profiles_are_sound_under_arbitrary_fault_seeds(
        genome_seed in 1u64..1000,
        fault_seed in any::<u64>(),
    ) {
        let reads = tiled_reads(1800, genome_seed);
        for threads in [1usize, 2, 4, 8] {
            let Some(trace) = faulted_trace(&reads, threads, fault_seed) else {
                // Hostile schedule killed the cluster; nothing to profile.
                continue;
            };
            let report = match profile_chrome_trace(&trace) {
                Ok(r) => r,
                Err(e) => return Err(TestCaseError::fail(format!("{threads} threads: {e}"))),
            };
            assert_causality_invariants(&report);
            prop_assert_eq!(
                profile_chrome_trace(&trace).unwrap().to_json(),
                report.to_json()
            );
        }
    }
}
