//! Process-level chaos for `focus serve`: SIGKILL the real server binary
//! mid-assembly, restart it on the same state directory, and require that
//! every in-flight job still finishes with contigs and metrics **byte
//! identical** to an uninterrupted reference run.
//!
//! This is the serving-layer counterpart of `tests/chaos.rs`: that harness
//! crashes the in-process pipeline at phase boundaries; this one kills the
//! whole daemon at arbitrary points — mid-HTTP-write, mid-checkpoint,
//! mid-manifest-rewrite — via `kill -9`, which is exactly what the durable
//! job state (DESIGN.md §12) is built to survive. The server under test is
//! the actual release artifact (`CARGO_BIN_EXE_focus`), driven over real
//! sockets with a hand-rolled HTTP/1.1 client.

use focus_assembler::seq::{fastq, Base, DnaString, Read};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn genome(len: usize, seed: u64) -> DnaString {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Base::from_code((state >> 5) as u8 & 3)
        })
        .collect()
}

/// Overlapping 100 bp reads tiled every 50 bp, serialized as FASTQ bytes —
/// one job's POST body.
fn fastq_job(len: usize, seed: u64) -> Vec<u8> {
    let g = genome(len, seed);
    let (read_len, stride) = (100usize, 50usize);
    let mut reads = Vec::new();
    let mut start = 0;
    while start + read_len <= g.len() {
        reads.push(Read::new(
            format!("r{start}"),
            g.slice(start, start + read_len),
        ));
        start += stride;
    }
    let mut body = Vec::new();
    fastq::write(&mut body, &reads, 30).expect("serialize fastq");
    body
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The real `focus serve` process plus the ephemeral port it bound.
/// Dropping it SIGKILLs the child so a panicking test never leaks a daemon.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    fn start(state_dir: &Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_focus"))
            .args([
                "serve",
                "--state-dir",
                state_dir.to_str().expect("utf8 temp dir"),
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--threads",
                "2",
                "--partitions",
                "4",
                "--min-overlap",
                "40",
                "--min-read-len",
                "30",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn focus serve");
        // The CLI prints and flushes `serve: listening on <addr>` before
        // anything else; parse the ephemeral port out of that line.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .strip_prefix("serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
            .trim()
            .parse()
            .expect("socket addr");
        Server { child, addr }
    }

    /// SIGKILL — no drain, no flush, no goodbye. The whole point.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    /// Graceful drain via the admin endpoint, then wait for process exit.
    fn drain(mut self) {
        let (status, _) = request(self.addr, "POST", "/admin/shutdown?mode=drain", b"");
        assert_eq!(status, 200, "drain request accepted");
        let code = self.child.wait().expect("wait for drained exit");
        assert!(code.success(), "clean exit after drain: {code:?}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Minimal HTTP/1.1 client: one request, returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..].find('"')? + start;
    Some(&body[start..end])
}

fn submit(addr: SocketAddr, body: &[u8]) -> String {
    let (status, resp) = request(addr, "POST", "/jobs?tenant=chaos", body);
    assert_eq!(status, 202, "submission admitted: {resp}");
    json_field(&resp, "id").expect("id field").to_string()
}

fn wait_done(addr: SocketAddr, id: &str, deadline: Instant) -> String {
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), b"");
        assert_eq!(status, 200, "{body}");
        match json_field(&body, "state").expect("state field") {
            "queued" | "running" => {}
            "done" => return body,
            other => panic!("job {id} ended {other}: {body}"),
        }
        assert!(Instant::now() < deadline, "job {id} stuck: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Fetches a terminal job's artifacts as raw bytes for byte comparison.
fn artifacts(addr: SocketAddr, id: &str) -> (String, String) {
    let (status, contigs) = request(addr, "GET", &format!("/jobs/{id}/contigs"), b"");
    assert_eq!(status, 200, "contigs served for {id}");
    let (status, metrics) = request(addr, "GET", &format!("/jobs/{id}/metrics"), b"");
    assert_eq!(status, 200, "metrics served for {id}");
    (contigs, metrics)
}

/// Runs `jobs` on a fresh server to completion without interference and
/// returns each job's (contigs, metrics) — the byte-exact reference.
fn reference_run(jobs: &[Vec<u8>]) -> Vec<(String, String)> {
    let dir = temp_dir("ref");
    let server = Server::start(&dir);
    let ids: Vec<String> = jobs.iter().map(|j| submit(server.addr, j)).collect();
    let deadline = Instant::now() + Duration::from_secs(120);
    let out = ids
        .iter()
        .map(|id| {
            wait_done(server.addr, id, deadline);
            artifacts(server.addr, id)
        })
        .collect();
    server.drain();
    out
}

#[test]
fn kill9_loop_resumes_every_job_byte_identically() {
    let jobs: Vec<Vec<u8>> = [(2_000usize, 7u64), (2_500, 31), (1_800, 101)]
        .iter()
        .map(|&(len, seed)| fastq_job(len, seed))
        .collect();
    let reference = reference_run(&jobs);

    // Chaos run: same jobs, same binary, fresh state dir — but the server
    // is SIGKILLed and restarted several times while they execute. The
    // sleeps stagger the kill points across the job lifecycle (queued,
    // mid-phase, mid-checkpoint); exact timing is irrelevant to the
    // contract, which must hold wherever the kill lands.
    let dir = temp_dir("kill9");
    let mut server = Server::start(&dir);
    let ids: Vec<String> = jobs.iter().map(|j| submit(server.addr, j)).collect();

    for cycle in 0..4u64 {
        std::thread::sleep(Duration::from_millis(15 + 40 * cycle));
        server.kill9();
        server = Server::start(&dir);
        // The restarted server must answer health checks immediately, even
        // while it re-queues whatever the kill left behind.
        let (status, body) = request(server.addr, "GET", "/healthz", b"");
        assert_eq!((status, body.as_str()), (200, "ok\n"), "cycle {cycle}");
    }

    // Job IDs are durable state: the survivors finish under their original
    // names, and their artifacts match the uninterrupted run bit for bit.
    let deadline = Instant::now() + Duration::from_secs(180);
    for (i, id) in ids.iter().enumerate() {
        wait_done(server.addr, id, deadline);
        let (contigs, metrics) = artifacts(server.addr, id);
        assert_eq!(
            contigs, reference[i].0,
            "job {id}: contigs diverged from the uninterrupted run"
        );
        assert_eq!(
            metrics, reference[i].1,
            "job {id}: metrics diverged from the uninterrupted run"
        );
    }
    server.drain();
}
