//! Workspace integration tests: the full pipeline over simulated data,
//! checked against ground truth.

use focus_assembler::classify::KmerClassifier;
use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::seq::DnaString;
use focus_assembler::sim::{generate_dataset, single_genome_dataset, DatasetConfig};

fn quick_config(k: usize) -> FocusConfig {
    FocusConfig {
        partitions: k,
        ..Default::default()
    }
}

/// Every `check_k`-mer of `contig` must occur in the genome (either strand):
/// the assembly invented no sequence.
fn assert_contig_faithful(contig: &DnaString, genome: &DnaString, check_k: usize) {
    let mut genome_kmers: Vec<u64> = genome.kmers(check_k).map(|(_, km)| km).collect();
    genome_kmers.extend(genome.reverse_complement().kmers(check_k).map(|(_, km)| km));
    genome_kmers.sort_unstable();
    for (pos, kmer) in contig.kmers(check_k) {
        assert!(
            genome_kmers.binary_search(&kmer).is_ok(),
            "contig {check_k}-mer at {pos} not present in the genome"
        );
    }
}

#[test]
fn single_genome_error_free_reconstruction() {
    // Error-free reads: contigs must be exact genome substrings.
    let dataset = {
        let mut config = DatasetConfig::default();
        config.taxonomy.genera = vec![("Escherichia".to_string(), "Proteobacteria".to_string())];
        config.taxonomy.genome.length = 6_000;
        config.taxonomy.genome.repeat_copies = 0;
        config.reads.error_rate_5p = 0.0;
        config.reads.error_rate_3p = 0.0;
        config.reads.bad_tail_probability = 0.0;
        // 20x coverage: the chance of a >50 bp gap between consecutive read
        // starts (which necessarily breaks a contig at the 50 bp overlap
        // threshold) is negligible.
        config.total_reads = 1200;
        generate_dataset("clean", &config, 9).unwrap()
    };
    let genome = dataset.taxonomy.genera[0].genome.clone();

    let assembler = FocusAssembler::new(quick_config(8)).unwrap();
    let result = assembler.assemble(&dataset.reads).unwrap();

    assert!(
        result.stats.max_contig >= genome.len() * 9 / 10,
        "max contig {} too short for a {} bp genome",
        result.stats.max_contig,
        genome.len()
    );
    for contig in &result.contigs {
        if contig.len() >= 64 {
            assert_contig_faithful(contig, &genome, 32);
        }
    }
}

#[test]
fn noisy_reads_still_assemble() {
    // Default error model: 0.2-1% substitutions plus degraded tails.
    let dataset = single_genome_dataset(5_000, 14.0, 4).unwrap();
    let genome_len = dataset.taxonomy.genera[0].genome.len();
    let assembler = FocusAssembler::new(quick_config(4)).unwrap();
    let result = assembler.assemble(&dataset.reads).unwrap();
    assert!(
        result.stats.max_contig >= genome_len / 3,
        "max contig {} too short under noise (genome {genome_len})",
        result.stats.max_contig
    );
    assert!(
        result.stats.n50 >= 300,
        "N50 {} too small",
        result.stats.n50
    );
}

#[test]
fn assembly_is_deterministic() {
    let dataset = single_genome_dataset(3_000, 10.0, 77).unwrap();
    let assembler = FocusAssembler::new(quick_config(4)).unwrap();
    let a = assembler.assemble(&dataset.reads).unwrap();
    let b = assembler.assemble(&dataset.reads).unwrap();
    let seq = |r: &focus_assembler::focus::AssemblyResult| {
        let mut v: Vec<String> = r.contigs.iter().map(|c| c.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(seq(&a), seq(&b));
    assert_eq!(a.stats.n50, b.stats.n50);
}

#[test]
fn metagenome_contigs_classify_to_single_genera() {
    let dataset = generate_dataset("meta", &DatasetConfig::test_scale(), 31).unwrap();
    let assembler = FocusAssembler::new(quick_config(8)).unwrap();
    let result = assembler.assemble(&dataset.reads).unwrap();
    assert!(!result.contigs.is_empty());

    let genomes: Vec<DnaString> = dataset
        .taxonomy
        .genera
        .iter()
        .map(|g| g.genome.clone())
        .collect();
    let classifier = KmerClassifier::build(&genomes, 21).unwrap();
    let mut classified = 0usize;
    let mut long_contigs = 0usize;
    for contig in &result.contigs {
        if contig.len() < 200 {
            continue;
        }
        long_contigs += 1;
        if classifier.classify_seq(contig).is_some() {
            classified += 1;
        }
    }
    assert!(long_contigs > 0, "expected some long contigs");
    assert_eq!(
        classified, long_contigs,
        "every long contig should classify against the reference genomes"
    );
}

#[test]
fn quality_trimming_removes_bad_tails_before_assembly() {
    // Crank up the tail corruption; with trimming the assembly should be
    // dramatically better than without.
    let mut config = DatasetConfig::default();
    config.taxonomy.genera = vec![("Escherichia".to_string(), "Proteobacteria".to_string())];
    config.taxonomy.genome.length = 4_000;
    config.taxonomy.genome.repeat_copies = 0;
    config.reads.bad_tail_probability = 0.9;
    config.reads.bad_tail_len = 30;
    config.total_reads = 560; // 14x
    let dataset = generate_dataset("tails", &config, 5).unwrap();

    let mut trimming = quick_config(4);
    trimming.trim.min_quality = 15.0;
    trimming.trim.window_len = 10;
    let with_trim = FocusAssembler::new(trimming)
        .unwrap()
        .assemble(&dataset.reads)
        .unwrap();

    let mut no_trimming = quick_config(4);
    no_trimming.trim.min_quality = -1.0; // every window passes: no trimming
    let without_trim = FocusAssembler::new(no_trimming)
        .unwrap()
        .assemble(&dataset.reads)
        .unwrap();

    assert!(
        with_trim.stats.n50 >= without_trim.stats.n50,
        "trimming should not hurt: {} vs {}",
        with_trim.stats.n50,
        without_trim.stats.n50
    );
    assert!(
        with_trim.stats.max_contig > 500,
        "trimmed assembly too fragmented: max {}",
        with_trim.stats.max_contig
    );
}

#[test]
fn metagenome_assembly_is_faithful_to_references() {
    use focus_assembler::focus::evaluate_against_references;
    let dataset = generate_dataset("faith", &DatasetConfig::test_scale(), 23).unwrap();
    let assembler = FocusAssembler::new(quick_config(8)).unwrap();
    let result = assembler.assemble(&dataset.reads).unwrap();
    let references: Vec<DnaString> = dataset
        .taxonomy
        .genera
        .iter()
        .map(|g| g.genome.clone())
        .collect();
    let eval = evaluate_against_references(&result.contigs, &references).unwrap();
    // The assembler invented (almost) nothing: contig k-mers trace back to
    // the references (consensus corrects most read errors; allow a little).
    assert!(
        eval.contig_accuracy > 0.95,
        "contig accuracy {}",
        eval.contig_accuracy
    );
    // Chimeric contigs (mixing genera) must be rare.
    assert!(
        eval.chimeric_contigs.len() * 20 <= eval.contigs_evaluated.max(1),
        "{} of {} contigs chimeric",
        eval.chimeric_contigs.len(),
        eval.contigs_evaluated
    );
    // A fair share of each sufficiently covered genome is recovered.
    assert!(
        eval.mean_genome_fraction() > 0.2,
        "fraction {}",
        eval.mean_genome_fraction()
    );
}

#[test]
fn consensus_improves_base_accuracy_over_first_wins() {
    use focus_assembler::focus::evaluate_against_references;
    let dataset = single_genome_dataset(5_000, 16.0, 33).unwrap();
    let references = vec![dataset.taxonomy.genera[0].genome.clone()];
    let mut config = quick_config(4);
    config.consensus = true;
    let with = FocusAssembler::new(config)
        .unwrap()
        .assemble(&dataset.reads)
        .unwrap();
    config.consensus = false;
    let without = FocusAssembler::new(config)
        .unwrap()
        .assemble(&dataset.reads)
        .unwrap();
    let acc_with = evaluate_against_references(&with.contigs, &references)
        .unwrap()
        .contig_accuracy;
    let acc_without = evaluate_against_references(&without.contigs, &references)
        .unwrap()
        .contig_accuracy;
    assert!(
        acc_with >= acc_without,
        "consensus should not be less accurate: {acc_with} vs {acc_without}"
    );
    assert!(acc_with > 0.98, "consensus accuracy too low: {acc_with}");
}
