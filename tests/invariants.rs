//! Cross-crate invariant tests on realistic pipeline artifacts.

use focus_assembler::dist::traverse::check_path_cover;
use focus_assembler::dist::{DistributedConfig, DistributedHybrid, FaultPlan, FaultRates, PhaseId};
use focus_assembler::focus::{FocusAssembler, FocusConfig};
use focus_assembler::partition::{
    edge_cut, partition_balance, partition_graph_set, validate_partition, PartitionConfig,
};
use focus_assembler::sim::{generate_dataset, DatasetConfig};

fn prepared() -> (
    focus_assembler::sim::Dataset,
    focus_assembler::focus::Prepared,
) {
    // Denser than `test_scale`: ~15x coverage keeps the overlap graph
    // connected, which is what balance/cut invariants assume.
    let mut config = DatasetConfig::test_scale();
    config.total_reads = 1800;
    let dataset = generate_dataset("inv", &config, 13).unwrap();
    let assembler = FocusAssembler::new(FocusConfig::default()).unwrap();
    let prepared = assembler.prepare(&dataset.reads).unwrap();
    (dataset, prepared)
}

#[test]
fn graph_sets_satisfy_structural_invariants() {
    let (_, p) = prepared();
    p.graph.undirected.check_invariants().unwrap();
    p.graph.directed.check_invariants().unwrap();
    p.multilevel.set.check_invariants().unwrap();
    p.hybrid.set.check_invariants().unwrap();
    // The hybrid graph is a compression: never more nodes than G0.
    assert!(p.hybrid.node_count() <= p.graph.undirected.node_count());
    // Node weight (reads represented) is conserved by the hybrid mapping.
    assert_eq!(
        p.hybrid.set.finest().total_node_weight() as usize,
        p.store.len()
    );
}

#[test]
fn hybrid_partition_projection_is_consistent() {
    let (_, p) = prepared();
    for k in [2usize, 4, 8] {
        let result = partition_graph_set(&p.hybrid.set, &PartitionConfig::new(k, 3)).unwrap();
        validate_partition(p.hybrid.set.finest(), result.finest(), k).unwrap();
        let read_parts = p.hybrid.project_partition_to_reads(result.finest());
        assert_eq!(read_parts.len(), p.store.len());
        // Every read in a cluster inherits its representative's partition.
        for (node, &rep) in p.hybrid.rep_of_node.iter().enumerate() {
            assert_eq!(read_parts[node], result.finest()[rep as usize]);
        }
        // Partition ids stay in range after projection.
        assert!(read_parts.iter().all(|&q| (q as usize) < k));
    }
}

#[test]
fn partition_balance_and_cut_are_sane_across_k() {
    let (_, p) = prepared();
    let total_weight = p.graph.undirected.total_edge_weight();
    for k in [2usize, 4, 8, 16] {
        let result = partition_graph_set(&p.hybrid.set, &PartitionConfig::new(k, 9)).unwrap();
        let read_parts = p.hybrid.project_partition_to_reads(result.finest());
        let cut = edge_cut(&p.graph.undirected, &read_parts);
        assert!(
            cut <= total_weight / 10,
            "k={k}: cut {cut} is more than 10% of total weight {total_weight}"
        );
        let balance = partition_balance(p.hybrid.set.finest(), result.finest(), k);
        // Hybrid nodes are indivisible read clusters, so the achievable
        // balance is floored by the heaviest node vs the ideal share.
        let finest = p.hybrid.set.finest();
        let heaviest = (0..finest.node_count() as u32)
            .map(|v| finest.node_weight(v))
            .max()
            .unwrap_or(1) as f64;
        let ideal = finest.total_node_weight() as f64 / k as f64;
        let allowed = 2.0f64.max(1.2 * (heaviest / ideal + 1.0));
        assert!(
            balance <= allowed,
            "k={k}: balance {balance} > allowed {allowed}"
        );
    }
}

#[test]
fn distributed_stage_preserves_node_cover_for_every_k() {
    let (_, p) = prepared();
    for k in [1usize, 2, 8] {
        let partition = partition_graph_set(&p.hybrid.set, &PartitionConfig::new(k, 5)).unwrap();
        let mut dh =
            DistributedHybrid::new(&p.hybrid, &p.store, partition.finest().to_vec(), k).unwrap();
        let report = dh.run(&DistributedConfig::default()).unwrap();
        check_path_cover(&dh.graph, &report.paths).unwrap();
        // Trimming can only remove; live nodes never exceed the input.
        assert!(dh.graph.live_node_count() <= p.hybrid.node_count());
    }
}

#[test]
fn assembly_stats_are_partition_invariant_on_metagenome() {
    // The Table III property on a noisy metagenome, as an invariant.
    let (_, p) = prepared();
    let assembler = FocusAssembler::new(FocusConfig::default()).unwrap();
    let baseline = assembler.assemble_prepared(&p, 2).unwrap();
    for k in [4usize, 16] {
        let result = assembler.assemble_prepared(&p, k).unwrap();
        assert_eq!(
            result.stats.num_contigs, baseline.stats.num_contigs,
            "k={k}"
        );
        assert_eq!(result.stats.n50, baseline.stats.n50, "k={k}");
        assert_eq!(result.stats.max_contig, baseline.stats.max_contig, "k={k}");
    }
}

#[test]
fn overlap_edge_weights_match_alignment_lengths() {
    let (_, p) = prepared();
    // Every undirected G0 edge weight must trace back to at least one
    // recorded overlap of that length or a sum of parallel ones.
    let min_len = 50u64;
    for (u, v, w) in p.graph.undirected.edges() {
        assert!(
            w >= min_len,
            "edge {u}-{v} weight {w} below the overlap threshold"
        );
    }
    // Directed edges carry identity within the configured bounds.
    for v in p.graph.directed.live_nodes() {
        for e in p.graph.directed.out_edges(v) {
            assert!(
                e.identity >= 0.90 - 1e-9,
                "edge identity {} too low",
                e.identity
            );
            assert!(e.len >= 50);
        }
    }
}

// ---- Fault-tolerance invariants (proptest) --------------------------------
//
// The shared fixture is expensive (a full prepare over 1800 reads), so it is
// built once and each proptest case clones the ready-to-run
// `DistributedHybrid`.

mod fault_invariants {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    const K: usize = 4;

    struct Fixture {
        dh: DistributedHybrid,
        clean_paths: Vec<focus_assembler::dist::AssemblyPath>,
    }

    fn fixture() -> &'static Fixture {
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let (_, p) = prepared();
            let partition =
                partition_graph_set(&p.hybrid.set, &PartitionConfig::new(K, 5)).unwrap();
            let dh = DistributedHybrid::new(&p.hybrid, &p.store, partition.finest().to_vec(), K)
                .unwrap();
            let clean_paths = dh.clone().run(&DistributedConfig::default()).unwrap().paths;
            Fixture { dh, clean_paths }
        })
    }

    fn sorted_cover(paths: &[focus_assembler::dist::AssemblyPath]) -> Vec<u32> {
        let mut nodes: Vec<u32> = paths.iter().flat_map(|p| p.nodes.iter().copied()).collect();
        nodes.sort_unstable();
        nodes
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Same fault seed ⇒ bit-identical paths and fault counters.
        #[test]
        fn same_fault_seed_reproduces_report_exactly(seed in any::<u64>()) {
            let fx = fixture();
            let rates = FaultRates { crash: 0.1, drop: 0.25, delay: 0.2, straggle: 0.2, ..Default::default() };
            let run = |_: ()| {
                fx.dh.clone().run_with_faults(
                    &DistributedConfig::default(),
                    FaultPlan::random(seed, K, &rates),
                )
            };
            match (run(()), run(())) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.paths, b.paths);
                    prop_assert_eq!(a.fault, b.fault);
                    prop_assert_eq!(a.messages, b.messages);
                    prop_assert_eq!(a.bytes, b.bytes);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
            }
        }

        /// A single rank crash in any phase never changes the final path
        /// node cover (and in fact not the paths themselves).
        #[test]
        fn single_crash_preserves_path_cover(
            phase_ix in 0usize..PhaseId::ALL.len(),
            rank in 0usize..K,
        ) {
            let fx = fixture();
            let plan = FaultPlan::single_crash(PhaseId::ALL[phase_ix], rank);
            let mut dh = fx.dh.clone();
            let report = dh.run_with_faults(&DistributedConfig::default(), plan).unwrap();
            check_path_cover(&dh.graph, &report.paths).unwrap();
            prop_assert_eq!(sorted_cover(&report.paths), sorted_cover(&fx.clean_paths));
            prop_assert_eq!(&report.paths, &fx.clean_paths);
            prop_assert_eq!(report.fault.crashes, 1);
        }
    }
}

// ---- Shared-memory parallelism invariants (proptest) ----------------------

mod parallel_determinism {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// The parallel engine's core guarantee, end to end: one pipeline,
        /// any thread count, bit-identical output — verified overlaps in
        /// order, partition assignment on every level, traversal paths,
        /// and final contigs.
        #[test]
        fn pipeline_output_is_thread_count_invariant(seed in 0u64..(1u64 << 48)) {
            let mut dconfig = DatasetConfig::test_scale();
            dconfig.total_reads = 600;
            let dataset = generate_dataset("par", &dconfig, seed).unwrap();
            let mut config = FocusConfig::default();
            config.partitions = 4;
            config.threads = 1;
            let serial_asm = FocusAssembler::new(config).unwrap();
            let serial_prep = serial_asm.prepare(&dataset.reads).unwrap();
            let serial = serial_asm.assemble_prepared(&serial_prep, 4);
            for threads in [2usize, 4, 8] {
                config.threads = threads;
                let asm = FocusAssembler::new(config).unwrap();
                let prep = asm.prepare(&dataset.reads).unwrap();
                prop_assert_eq!(&prep.overlaps, &serial_prep.overlaps, "overlaps @ {} threads", threads);
                prop_assert_eq!(&prep.pair_stats, &serial_prep.pair_stats, "pair stats @ {} threads", threads);
                let pooled = asm.assemble_prepared(&prep, 4);
                match (&serial, &pooled) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.partition.parts_per_level, &b.partition.parts_per_level,
                            "partition @ {} threads", threads);
                        prop_assert_eq!(&a.report.paths, &b.report.paths,
                            "paths @ {} threads", threads);
                        prop_assert_eq!(&a.contigs, &b.contigs,
                            "contigs @ {} threads", threads);
                    }
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(false, "outcome kind diverged at {threads} threads"),
                }
            }
        }
    }
}

/// Property tests promoting the debug-time assertions of fc-align's banded
/// aligner and fc-graph's coarsening into checked invariants: band
/// feasibility/monotonicity for Needleman–Wunsch, and matching validity plus
/// weight conservation for heavy-edge contraction.
mod proptests {
    use focus_assembler::align::{banded_global, NwConfig};
    use focus_assembler::graph::coarsen::{contract, heavy_edge_matching};
    use focus_assembler::graph::{CoarsenConfig, LevelGraph, MultilevelSet, NodeId};
    use focus_assembler::seq::{Base, DnaString};
    use proptest::prelude::*;

    fn dna(max_len: usize) -> impl Strategy<Value = DnaString> {
        proptest::collection::vec(0u8..4, 0..max_len)
            .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
    }

    /// Random undirected weighted graph plus a matching seed. Self-loops are
    /// skipped (LevelGraph edges connect distinct nodes).
    fn level_graph() -> impl Strategy<Value = (LevelGraph, u64)> {
        (2usize..20)
            .prop_flat_map(|n| {
                (
                    proptest::collection::vec(1u64..8, n),
                    proptest::collection::vec((0..n, 0..n, 1u64..10), 0..48),
                    any::<u64>(),
                )
            })
            .prop_map(|(weights, edges, seed)| {
                let mut g = LevelGraph::with_node_weights(weights);
                for (u, v, w) in edges {
                    if u != v {
                        g.add_edge(u as NodeId, v as NodeId, w);
                    }
                }
                (g, seed)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The band bound is exact: alignment exists iff the length
        /// difference fits the band, widening the band never lowers the
        /// score, and any band covering both sequences is equivalent to the
        /// full DP matrix.
        #[test]
        fn nw_band_bound_is_exact_and_monotone(a in dna(18), b in dna(18)) {
            let full_band = a.len().max(b.len()).max(1);
            let full_cfg = NwConfig { band: full_band, ..NwConfig::default() };
            let reference =
                banded_global(&a, (0, a.len()), &b, (0, b.len()), &full_cfg).unwrap();
            let mut prev_score = None;
            for band in 0..=full_band {
                let cfg = NwConfig { band, ..NwConfig::default() };
                match banded_global(&a, (0, a.len()), &b, (0, b.len()), &cfg) {
                    None => prop_assert!(a.len().abs_diff(b.len()) > band),
                    Some(s) => {
                        prop_assert!(a.len().abs_diff(b.len()) <= band);
                        prop_assert!(s.score <= reference.score);
                        if let Some(p) = prev_score {
                            prop_assert!(s.score >= p);
                        }
                        prev_score = Some(s.score);
                    }
                }
            }
            let wide_cfg = NwConfig { band: full_band + 7, ..NwConfig::default() };
            let wide = banded_global(&a, (0, a.len()), &b, (0, b.len()), &wide_cfg).unwrap();
            prop_assert_eq!(wide.score, reference.score);
            prop_assert_eq!(wide.columns, reference.columns);
            prop_assert_eq!(wide.matches, reference.matches);
        }

        /// Heavy-edge matching is an involution along real edges, and it is
        /// maximal: no edge joins two unmatched nodes.
        #[test]
        fn heavy_edge_matching_is_a_maximal_matching((g, seed) in level_graph()) {
            let mate = heavy_edge_matching(&g, seed);
            prop_assert_eq!(mate.len(), g.node_count());
            for v in 0..g.node_count() {
                let m = mate[v] as usize;
                prop_assert_eq!(mate[m] as usize, v);
                if m != v {
                    prop_assert!(g.edge_weight(v as NodeId, mate[v]).is_some());
                }
            }
            for (u, v, _) in g.edges() {
                let unmatched =
                    |x: NodeId| mate[x as usize] == x;
                prop_assert!(!(u != v && unmatched(u) && unmatched(v)));
            }
        }

        /// Contraction conserves node weight exactly, and edge weight up to
        /// the intra-pair edges folded into coarse nodes (self-loops drop).
        #[test]
        fn contraction_conserves_weight((g, seed) in level_graph()) {
            let mate = heavy_edge_matching(&g, seed);
            let (coarse, map) = contract(&g, &mate);
            prop_assert!(coarse.check_invariants().is_ok());
            prop_assert_eq!(coarse.total_node_weight(), g.total_node_weight());
            let folded: u64 = (0..g.node_count())
                .filter_map(|v| {
                    let m = mate[v] as usize;
                    if m > v {
                        g.edge_weight(v as NodeId, m as NodeId)
                    } else {
                        None
                    }
                })
                .sum();
            prop_assert_eq!(coarse.total_edge_weight() + folded, g.total_edge_weight());
            for v in 0..g.node_count() {
                prop_assert_eq!(map[v], map[mate[v] as usize]);
                prop_assert!((map[v] as usize) < coarse.node_count());
            }
        }

        /// The full multilevel build keeps every cross-level invariant and
        /// conserves total node weight from G0 to the coarsest level.
        #[test]
        fn multilevel_build_conserves_node_weight((g, _) in level_graph()) {
            let w0 = g.total_node_weight();
            let set = MultilevelSet::build(g, &CoarsenConfig::default());
            prop_assert!(set.set.check_invariants().is_ok());
            for level in &set.set.levels {
                prop_assert!(level.check_invariants().is_ok());
                prop_assert_eq!(level.total_node_weight(), w0);
            }
        }
    }
}
