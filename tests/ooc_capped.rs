//! Capped-heap proof for the out-of-core path, measured with a real
//! counting allocator (not the ledger): the spilled pipeline's true peak
//! heap is strictly below the in-core pipeline's on the same input, it
//! stays within a budget derived from its own measured peak, and the
//! contigs under that cap are byte-identical to the uncapped in-core run.
//!
//! This lives in its own integration-test binary on purpose: a
//! `#[global_allocator]` is process-wide, and the single `#[test]` here
//! keeps peak attribution honest.

use focus_assembler::focus::{
    AssemblyOutcome, CheckpointOptions, FocusAssembler, FocusConfig, OocOptions,
};
use focus_assembler::obs::ObsOptions;
use focus_assembler::seq::{fastq, Base, DnaString, Read};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `System`, plus live-byte and peak-byte counters.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let live =
                    LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                        - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak heap growth over `f`, relative to the live bytes at entry.
fn peak_over<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

fn genome(len: usize, seed: u64) -> DnaString {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Base::from_code((state >> 5) as u8 & 3)
        })
        .collect()
}

fn tiled_reads(len: usize, seed: u64) -> Vec<Read> {
    let g = genome(len, seed);
    // Long reads on purpose: suffix-array indexes scale with bases while
    // the graph scales with overlap count, so the alignment phase — the
    // part spilling shrinks — dominates the in-core peak.
    let (read_len, stride) = (300usize, 150usize);
    let mut reads = Vec::new();
    let mut start = 0;
    while start + read_len <= g.len() {
        reads.push(Read::new(
            format!("r{start}"),
            g.slice(start, start + read_len),
        ));
        start += stride;
    }
    reads
}

fn config() -> FocusConfig {
    let mut c = FocusConfig {
        partitions: 4,
        subsets: 8,
        threads: 1,
        observability: ObsOptions::logical(),
        ..Default::default()
    };
    c.trim.min_read_len = 30;
    c.overlap.min_overlap_len = 40;
    c
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-ooc-cap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn spilled_peak_heap_is_below_in_core_and_within_budget() {
    // Big enough that the pipeline's data structures dominate constant
    // overheads in the peak measurement.
    let reads = tiled_reads(36_000, 11);
    let input_dir = temp_dir("input");
    std::fs::create_dir_all(&input_dir).unwrap();
    let input = input_dir.join("reads.fastq");
    let mut buf = Vec::new();
    for read in &reads {
        fastq::write_read(&mut buf, read, 30).unwrap();
    }
    std::fs::write(&input, &buf).unwrap();
    drop(buf);
    drop(reads);

    // Uncapped in-core run from the file — parse-everything-then-assemble,
    // exactly what the in-core CLI path does — for baseline contigs and
    // the real peak heap.
    let (clean, in_core_peak) = peak_over(|| {
        let parsed: Vec<Read> =
            fastq::Reader::new(BufReader::new(std::fs::File::open(&input).unwrap()))
                .collect::<Result<_, _>>()
                .unwrap();
        let assembler = FocusAssembler::new(config()).unwrap();
        assembler.assemble(&parsed).unwrap()
    });

    // Uncapped spilled run: measure its real peak.
    let spill = temp_dir("measure");
    let (first, ooc_peak) = peak_over(|| {
        let assembler = FocusAssembler::new(config()).unwrap();
        match assembler
            .assemble_fastq_ooc(&input, &CheckpointOptions::default(), &OocOptions::in_dir(&spill))
            .unwrap()
        {
            AssemblyOutcome::Completed(r) => r,
            AssemblyOutcome::Stopped(p) => panic!("stopped at {p:?}"),
        }
    });
    assert_eq!(first.contigs, clean.contigs);
    drop(first);
    let _ = std::fs::remove_dir_all(&spill);
    assert!(
        ooc_peak < in_core_peak,
        "spilling did not reduce the real peak: ooc {ooc_peak} vs in-core {in_core_peak}"
    );

    // Re-run under an enforced budget with ~15% headroom over the
    // measured spilled peak — a cap the in-core run above demonstrably
    // blows through. Peak stays under the cap, contigs stay identical.
    let budget = ooc_peak + ooc_peak / 7;
    assert!(
        (budget as usize) < in_core_peak,
        "budget {budget} does not separate the two paths (in-core peak {in_core_peak})"
    );
    let spill = temp_dir("capped");
    let mut capped_config = config();
    capped_config.memory_budget = Some(budget as u64);
    let (capped, capped_peak) = peak_over(|| {
        let assembler = FocusAssembler::new(capped_config).unwrap();
        match assembler
            .assemble_fastq_ooc(&input, &CheckpointOptions::default(), &OocOptions::in_dir(&spill))
            .unwrap()
        {
            AssemblyOutcome::Completed(r) => r,
            AssemblyOutcome::Stopped(p) => panic!("stopped at {p:?}"),
        }
    });
    assert_eq!(capped.contigs, clean.contigs);
    assert!(
        capped_peak <= budget,
        "real peak {capped_peak} exceeded the {budget}-byte cap"
    );
    let _ = std::fs::remove_dir_all(&spill);
    let _ = std::fs::remove_dir_all(&input_dir);
}
