//! Crash-anywhere chaos harness for the durable checkpoint layer.
//!
//! The contract under test: killing the pipeline after *any* phase
//! boundary and resuming from its checkpoints reproduces the uninterrupted
//! run bit for bit — same contigs, same traversal paths, same fault
//! report, and (in logical-clock mode) a byte-identical metrics snapshot.
//! Corruption anywhere — torn writes, bit flips, short reads, a flipped
//! byte in any checkpoint file, mismatched fingerprints — must be
//! *detected* and answered by recomputation, never trusted; and a
//! checkpoint directory that fails mid-run (ENOSPC, unwritable) degrades
//! checkpointing without taking the assembly down.

use focus_assembler::ckpt::{FsFaultPlan, ReadFault, WriteFault};
use focus_assembler::ckpt::{decode_from_slice, encode_to_vec, CheckpointStore, Codec, LoadOutcome};
use focus_assembler::dist::DistPhaseState;
use focus_assembler::focus::{
    config_fingerprint, input_digest, AssemblyOutcome, AssemblyResult, CheckpointOptions,
    CkptPhase, FaultInjection, FocusAssembler, FocusConfig,
};
use focus_assembler::obs::ObsOptions;
use focus_assembler::seq::{Base, DnaString, Read};
use proptest::prelude::*;
use std::path::PathBuf;

fn genome(len: usize, seed: u64) -> DnaString {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Base::from_code((state >> 5) as u8 & 3)
        })
        .collect()
}

fn tiled_reads(len: usize, seed: u64) -> Vec<Read> {
    let g = genome(len, seed);
    let (read_len, stride) = (100usize, 50usize);
    let mut reads = Vec::new();
    let mut start = 0;
    while start + read_len <= g.len() {
        reads.push(Read::new(
            format!("r{start}"),
            g.slice(start, start + read_len),
        ));
        start += stride;
    }
    reads
}

/// Logical-clock observability + deterministic dist-stage fault injection,
/// so resumed runs have a non-trivial fault report to reproduce.
fn chaos_config() -> FocusConfig {
    let mut c = FocusConfig {
        partitions: 4,
        observability: ObsOptions::logical(),
        ..Default::default()
    };
    c.trim.min_read_len = 30;
    c.overlap.min_overlap_len = 40;
    c.fault = Some(FaultInjection {
        seed: 42,
        rates: focus_assembler::dist::FaultRates {
            crash: 0.2,
            drop: 0.3,
            ..Default::default()
        },
    });
    c
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn completed(outcome: AssemblyOutcome) -> AssemblyResult {
    match outcome {
        AssemblyOutcome::Completed(r) => r,
        AssemblyOutcome::Stopped(p) => panic!("unexpected stop after {p:?}"),
    }
}

/// A fresh assembler per run: recorders are per-assembler, and comparing
/// snapshots requires each run to start from a clean one.
fn run_clean(reads: &[Read]) -> (AssemblyResult, String) {
    let assembler = FocusAssembler::new(chaos_config()).unwrap();
    let result = assembler.assemble(reads).unwrap();
    let snapshot = assembler.recorder().snapshot_json();
    (result, snapshot)
}

fn run_ckpt(reads: &[Read], opts: &CheckpointOptions) -> (AssemblyOutcome, String) {
    let assembler = FocusAssembler::new(chaos_config()).unwrap();
    let outcome = assembler.assemble_with_checkpoints(reads, opts).unwrap();
    let snapshot = assembler.recorder().snapshot_json();
    (outcome, snapshot)
}

#[test]
fn kill_after_every_phase_then_resume_reproduces_the_clean_run() {
    let reads = tiled_reads(2500, 11);
    let (clean, clean_snapshot) = run_clean(&reads);
    for &phase in &CkptPhase::ALL {
        let dir = temp_dir(&format!("kill-{}", phase.name()));
        let mut opts = CheckpointOptions::in_dir(&dir);
        opts.stop_after = Some(phase);
        let (stopped, _) = run_ckpt(&reads, &opts);
        match stopped {
            AssemblyOutcome::Stopped(p) => assert_eq!(p, phase),
            AssemblyOutcome::Completed(_) => panic!("{} did not stop", phase.name()),
        }
        opts.stop_after = None;
        opts.resume = true;
        let (outcome, snapshot) = run_ckpt(&reads, &opts);
        let resumed = completed(outcome);
        assert_eq!(resumed.contigs, clean.contigs, "contigs after {}", phase.name());
        assert_eq!(resumed.report.paths, clean.report.paths, "{}", phase.name());
        assert_eq!(resumed.report.fault, clean.report.fault, "{}", phase.name());
        assert_eq!(snapshot, clean_snapshot, "metrics after {}", phase.name());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_and_bit_flipped_writes_are_rejected_on_resume_and_recomputed() {
    let reads = tiled_reads(2500, 11);
    let (clean, clean_snapshot) = run_clean(&reads);
    let faults = [
        WriteFault::Torn,
        WriteFault::BitFlip { bit: 12_345 },
        WriteFault::Torn,
    ];
    // Ops 0/2 corrupt pipeline-stage checkpoints; op 8 corrupts the last
    // distributed checkpoint (earlier dist phases are subsumed by later
    // ones and legitimately never re-read on resume).
    for (op, fault) in [(0u64, faults[0]), (2, faults[1]), (8, faults[2])] {
        let dir = temp_dir(&format!("wfault-{op}"));
        let mut opts = CheckpointOptions::in_dir(&dir);
        opts.fs_faults = FsFaultPlan::none().fail_write(op, fault);
        // The sabotaged run itself still completes and is still correct:
        // checkpoint writes never feed back into the computation.
        let sabotaged = completed(run_ckpt(&reads, &opts).0);
        assert_eq!(sabotaged.contigs, clean.contigs);
        // Resume sees the bad file, rejects it, recomputes that phase.
        let mut resume = CheckpointOptions::in_dir(&dir);
        resume.resume = true;
        let assembler = FocusAssembler::new(chaos_config()).unwrap();
        let resumed = completed(assembler.assemble_with_checkpoints(&reads, &resume).unwrap());
        assert_eq!(resumed.contigs, clean.contigs, "write op {op}");
        assert_eq!(assembler.recorder().snapshot_json(), clean_snapshot);
        let rejected = assembler.recorder().snapshot().counters["ckpt.rejected"];
        assert!(rejected >= 1, "write op {op} was never detected");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn short_and_bit_flipped_reads_are_rejected_on_resume_and_recomputed() {
    let reads = tiled_reads(2500, 11);
    let (clean, _) = run_clean(&reads);
    let dir = temp_dir("rfault");
    let opts = CheckpointOptions::in_dir(&dir);
    completed(run_ckpt(&reads, &opts).0);
    let mut resume = CheckpointOptions::in_dir(&dir);
    resume.resume = true;
    resume.fs_faults = FsFaultPlan::none()
        .fail_read(0, ReadFault::Short)
        .fail_read(1, ReadFault::BitFlip { bit: 4_321 });
    let assembler = FocusAssembler::new(chaos_config()).unwrap();
    let resumed = completed(assembler.assemble_with_checkpoints(&reads, &resume).unwrap());
    assert_eq!(resumed.contigs, clean.contigs);
    let counters = assembler.recorder().snapshot().counters;
    assert!(counters["ckpt.rejected"] >= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_flipped_byte_in_each_checkpoint_kind_is_detected_and_recomputed() {
    let reads = tiled_reads(2500, 11);
    let (clean, clean_snapshot) = run_clean(&reads);
    let master = temp_dir("flip-master");
    let opts = CheckpointOptions::in_dir(&master);
    completed(run_ckpt(&reads, &opts).0);
    for &phase in &CkptPhase::ALL {
        // Fresh copy of the checkpoint directory per corruption.
        let dir = temp_dir(&format!("flip-{}", phase.name()));
        std::fs::create_dir_all(&dir).unwrap();
        for entry in std::fs::read_dir(&master).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
        }
        // Distributed checkpoints resume latest-first: drop every phase
        // after the one under test so the corrupted file IS the latest
        // and must actually be read (earlier dist phases are subsumed
        // by later ones by design).
        for &later in &CkptPhase::ALL {
            if later.id() > phase.id() && later.id() > CkptPhase::Partition.id() {
                let _ =
                    std::fs::remove_file(dir.join(CheckpointStore::file_name(later.id(), later.name())));
            }
        }
        let path = dir.join(CheckpointStore::file_name(phase.id(), phase.name()));
        let mut corrupt = std::fs::read(&path).unwrap();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();

        let mut resume = CheckpointOptions::in_dir(&dir);
        resume.resume = true;
        let assembler = FocusAssembler::new(chaos_config()).unwrap();
        let resumed = completed(assembler.assemble_with_checkpoints(&reads, &resume).unwrap());
        assert_eq!(resumed.contigs, clean.contigs, "flip in {}", phase.name());
        assert_eq!(assembler.recorder().snapshot_json(), clean_snapshot);
        let counters = assembler.recorder().snapshot().counters;
        assert!(
            counters["ckpt.rejected"] >= 1,
            "flip in {} went undetected",
            phase.name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&master);
}

#[test]
fn enospc_mid_run_degrades_checkpointing_but_the_assembly_finishes() {
    let reads = tiled_reads(2500, 11);
    let (clean, _) = run_clean(&reads);
    let dir = temp_dir("enospc");
    let mut opts = CheckpointOptions::in_dir(&dir);
    opts.fs_faults = FsFaultPlan::none().fail_write(2, WriteFault::Enospc);
    let assembler = FocusAssembler::new(chaos_config()).unwrap();
    let result = completed(assembler.assemble_with_checkpoints(&reads, &opts).unwrap());
    assert_eq!(result.contigs, clean.contigs);
    let counters = assembler.recorder().snapshot().counters;
    assert_eq!(counters["ckpt.degraded"], 1);
    assert_eq!(counters["ckpt.saved"], 2, "only the pre-ENOSPC saves land");
    // Exactly one warning event despite seven more boundaries afterwards.
    let warnings = assembler
        .recorder()
        .events()
        .iter()
        .filter(|e| e.name == "ckpt.degraded")
        .count();
    assert_eq!(warnings, 1);
    // The partial directory is still a valid resume point for what it has.
    let mut resume = CheckpointOptions::in_dir(&dir);
    resume.resume = true;
    let resumed = completed(run_ckpt(&reads, &resume).0);
    assert_eq!(resumed.contigs, clean.contigs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_from_another_config_or_input_never_resume_this_run() {
    let reads = tiled_reads(2500, 11);
    let dir = temp_dir("mismatch");
    let opts = CheckpointOptions::in_dir(&dir);
    completed(run_ckpt(&reads, &opts).0);

    // Different partition count ⇒ different config fingerprint.
    let mut other_config = chaos_config();
    other_config.partitions = 8;
    let assembler = FocusAssembler::new(other_config).unwrap();
    let mut resume = CheckpointOptions::in_dir(&dir);
    resume.resume = true;
    let other_clean = assembler.assemble(&reads).unwrap();
    let resumed = completed(
        FocusAssembler::new(other_config)
            .unwrap()
            .assemble_with_checkpoints(&reads, &resume)
            .unwrap(),
    );
    assert_eq!(resumed.contigs, other_clean.contigs);

    // Different reads ⇒ different input digest: nothing loads either.
    let other_reads = tiled_reads(2500, 13);
    let dir2 = temp_dir("mismatch-input");
    let fresh = CheckpointOptions::in_dir(&dir2);
    let expected = completed(run_ckpt(&other_reads, &fresh).0);
    let assembler = FocusAssembler::new(chaos_config()).unwrap();
    let resumed = completed(
        assembler
            .assemble_with_checkpoints(&other_reads, &resume)
            .unwrap(),
    );
    assert_eq!(resumed.contigs, expected.contigs);
    let counters = assembler.recorder().snapshot().counters;
    assert!(counters["ckpt.rejected"] >= 1);
    assert!(!counters.contains_key("ckpt.loaded"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn manifest_lists_every_phase_after_a_full_run() {
    let reads = tiled_reads(2000, 17);
    let dir = temp_dir("manifest");
    let opts = CheckpointOptions::in_dir(&dir);
    completed(run_ckpt(&reads, &opts).0);
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.txt")).unwrap();
    for phase in CkptPhase::ALL {
        assert!(
            manifest.contains(phase.name()),
            "manifest is missing {}",
            phase.name()
        );
    }
    assert!(manifest.contains(&format!("checkpoints = {}", CkptPhase::ALL.len())));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte-level round trip through the wire format: decode(encode(x))
/// re-encodes to the identical bytes. Used instead of `PartialEq` because
/// several payloads intentionally don't implement it.
fn assert_reencodes<T: Codec>(bytes: &[u8], what: &str) {
    let back: T = decode_from_slice(bytes).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert_eq!(encode_to_vec(&back), bytes, "{what} re-encodes differently");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Satellite: serialize→deserialize round trip for every phase
    /// payload, over randomly generated pipelines.
    #[test]
    fn every_phase_payload_round_trips(seed in 0u64..1_000, len in 1_800usize..2_600) {
        let reads = tiled_reads(len, seed);
        let config = chaos_config();
        let assembler = FocusAssembler::new(config).unwrap();
        let Ok(prepared) = assembler.prepare(&reads) else {
            // Some tiny random genomes assemble to nothing; skip those.
            return Ok(());
        };
        assert_reencodes::<focus_assembler::seq::ReadStore>(
            &encode_to_vec(&prepared.store), "ReadStore");
        type AlignmentCkpt = (
            Vec<focus_assembler::align::Overlap>,
            Vec<(usize, usize, focus_assembler::align::PairStats)>,
        );
        let alignment: AlignmentCkpt = (prepared.overlaps.clone(), prepared.pair_stats.clone());
        assert_reencodes::<AlignmentCkpt>(&encode_to_vec(&alignment), "alignment payload");
        assert_reencodes::<focus_assembler::graph::MultilevelSet>(
            &encode_to_vec(&prepared.multilevel), "MultilevelSet");
        assert_reencodes::<focus_assembler::graph::HybridSet>(
            &encode_to_vec(&prepared.hybrid), "HybridSet");
        let partition = assembler.assemble_prepared(&prepared, 4).unwrap().partition;
        assert_reencodes::<focus_assembler::partition::PartitionResult>(
            &encode_to_vec(&partition), "PartitionResult");

        // Distributed phase states: pull the real ones off a checkpointed
        // run and round-trip each through the wire format.
        let dir = temp_dir(&format!("roundtrip-{seed}-{len}"));
        let opts = CheckpointOptions::in_dir(&dir);
        completed(assembler.assemble_with_checkpoints(&reads, &opts).unwrap());
        let mut store = CheckpointStore::new(
            &dir,
            config_fingerprint(assembler.config()),
            input_digest(&reads),
        );
        for phase in &CkptPhase::ALL[5..] {
            match store.load(phase.id(), phase.name()) {
                LoadOutcome::Loaded(records) => {
                    prop_assert_eq!(records.len(), 2);
                    assert_reencodes::<DistPhaseState>(&records[0], phase.name());
                }
                other => panic!("{}: expected Loaded, got {other:?}", phase.name()),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crashing at a random phase with a random single write fault still
    /// resumes to the clean answer.
    #[test]
    fn random_crash_point_with_a_random_write_fault_still_resumes(
        phase_idx in 0usize..9,
        fault_op in 0u64..9,
        flip in 0u64..2,
    ) {
        let reads = tiled_reads(2_200, 19);
        let clean = FocusAssembler::new(chaos_config())
            .unwrap()
            .assemble(&reads)
            .unwrap();
        let phase = CkptPhase::ALL[phase_idx];
        let fault = if flip == 0 {
            WriteFault::Torn
        } else {
            WriteFault::BitFlip { bit: 999 }
        };
        let dir = temp_dir(&format!("rand-{phase_idx}-{fault_op}-{flip}"));
        let mut opts = CheckpointOptions::in_dir(&dir);
        opts.stop_after = Some(phase);
        opts.fs_faults = FsFaultPlan::none().fail_write(fault_op, fault);
        let (outcome, _) = run_ckpt(&reads, &opts);
        match outcome {
            AssemblyOutcome::Stopped(p) => prop_assert_eq!(p, phase),
            AssemblyOutcome::Completed(_) => prop_assert!(false, "did not stop"),
        }
        let mut resume = CheckpointOptions::in_dir(&dir);
        resume.resume = true;
        let resumed = completed(run_ckpt(&reads, &resume).0);
        prop_assert_eq!(&resumed.contigs, &clean.contigs);
        prop_assert_eq!(&resumed.report.fault, &clean.report.fault);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
