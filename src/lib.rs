//! # focus-assembler — workspace facade
//!
//! Re-exports every subsystem of the Focus reproduction so examples and
//! downstream users can depend on a single crate. See the workspace README
//! and DESIGN.md for the architecture, and `focus_core::FocusAssembler` for
//! the end-to-end pipeline entry point.

pub use fc_align as align;
pub use fc_ckpt as ckpt;
pub use fc_classify as classify;
pub use fc_dist as dist;
pub use fc_graph as graph;
pub use fc_obs as obs;
pub use fc_partition as partition;
pub use fc_seq as seq;
pub use fc_serve as serve;
pub use fc_sim as sim;
pub use focus_core as focus;
