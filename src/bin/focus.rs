//! `focus` — command-line front end for the Focus assembler.
//!
//! ```text
//! focus assemble --input reads.fastq --output contigs.fasta [options]
//! focus simulate --genome-len 20000 --coverage 10 --output reads.fastq
//! ```
//!
//! Run `focus help` for the full option list.

use focus_assembler::focus::{
    AssemblyOutcome, AssemblyResult, CheckpointOptions, CkptPhase, FocusAssembler, FocusConfig,
    OocOptions,
};
use focus_assembler::seq::{fasta, fastq, Read};
use focus_assembler::sim::single_genome_dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

const HELP: &str = "\
focus — parallel NGS assembly on distributed overlap graphs

USAGE:
    focus assemble --input <reads.{fasta,fastq}> --output <contigs.fasta> [options]
    focus simulate --output <reads.fastq> [options]
    focus stats    --input <contigs.fasta>
    focus graph    --input <reads.{fasta,fastq}> --output <graph.{gfa,dot}> [options]
    focus variants --input <reads.{fasta,fastq}> [options]
    focus classify --input <reads.{fasta,fastq}> --references <refs.fasta>
    focus obs-check [--trace <t.json>] [--metrics <m.json>] [--events <e.jsonl>]
    focus profile  <trace.json> [--json]
    focus serve    --state-dir <dir> [options]
    focus help

ASSEMBLE OPTIONS:
    --input <path>         input reads (format by extension: .fasta/.fa/.fastq/.fq)
    --output <path>        output contig FASTA
    --partitions <k>       graph partitions, power of two        [default: 16]
    --min-overlap <bp>     minimum overlap length                [default: 50]
    --min-identity <f>     minimum overlap identity in [0,1]     [default: 0.90]
    --min-read-len <bp>    drop reads shorter than this          [default: 40]
    --min-quality <q>      sliding-window quality threshold      [default: 20]
    --subsets <n>          read subsets for pairwise alignment   [default: 4]
    --seed <u64>           partitioning seed                     [default: 985093]
    --threads <n>          worker threads; 0 = all cores, 1 = serial;
                           output is identical at any setting    [default: 0]
    --align-kernel <k>     overlap verification kernel: scalar, bitparallel,
                           or auto (SIMD when the CPU has it); contigs are
                           identical at any setting              [default: auto]
    --keep-both-strands    emit both strands of every contig

MEMORY OPTIONS (assemble, FASTQ input only):
    --memory-budget <b>    cap the accounted heap; plain bytes or a k/M/G
                           suffix (e.g. 512M). Routes the run through the
                           out-of-core pipeline: input is streamed, reads
                           are staged to disk pages, and alignment results
                           spill through CRC-verified files. Contigs and
                           logical metric snapshots are byte-identical to
                           an in-core run of the same config.
    --spill-dir <dir>      directory for staged pages and spill runs;
                           implies the out-of-core pipeline even with no
                           budget. Defaults to <checkpoint-dir>/ooc, or a
                           temp dir, when only --memory-budget is given.

CHECKPOINT OPTIONS (assemble):
    --checkpoint-dir <dir> write a verified checkpoint after every pipeline
                           phase (atomic temp-file + rename, CRC-protected)
    --resume               skip phases whose checkpoints in --checkpoint-dir
                           verify (checksums + config/input fingerprints);
                           anything corrupt or mismatched is recomputed
    --crash-after <phase>  stop right after checkpointing <phase> and exit
                           with code 3 (chaos-harness crash point); one of:
                           preprocess alignment coarsen hybrid partition
                           dist_transitive_reduction dist_containment_removal
                           dist_error_removal dist_traversal

OBSERVABILITY OPTIONS (assemble):
    --trace <path>         write a Chrome trace_event JSON (open in Perfetto)
    --metrics <path>       write the metrics snapshot JSON
    --events <path>        write raw events as JSON lines
    --logical-clock        timestamp events with a logical counter instead of
                           wall time; metric snapshots become byte-identical
                           at any --threads setting

OBS-CHECK OPTIONS:
    --trace <path>         validate a Chrome trace written by --trace
    --metrics <path>       validate a metrics snapshot written by --metrics
    --events <path>        validate a JSON-lines event log written by --events

PROFILE OPTIONS:
    <trace.json>           a causal Chrome trace written by --trace (or
                           served at GET /jobs/{id}/trace); reconstructs the
                           span DAG and extracts the critical path with
                           compute/wait/retry attribution
    --json                 emit the stable machine-readable report instead
                           of the human table (byte-stable for CI diffing)

SIMULATE OPTIONS:
    --output <path>        output FASTQ
    --genome-len <bp>      genome length                         [default: 20000]
    --coverage <x>         read coverage                         [default: 10]
    --seed <u64>           simulation seed                       [default: 42]

GRAPH OPTIONS (assemble options also apply):
    --output <path>        .gfa emits GFA v1, .dot emits Graphviz
    --with-sequences       include contig sequences in GFA segments

VARIANTS OPTIONS (assemble options also apply):
    --min-support <n>      minimum read support per branch       [default: 2]

CLASSIFY OPTIONS:
    --references <path>    reference FASTA, one record per taxon
    --kmer <k>             classification k-mer length           [default: 21]

SERVE OPTIONS (assemble options set the base pipeline config):
    --state-dir <dir>      durable job state; restart on the same dir
                           resumes every unfinished job
    --addr <host:port>     bind address (port 0 picks a free port)
                                                 [default: 127.0.0.1:7070]
    --workers <n>          concurrent assembly jobs; 0 = 2       [default: 0]
    --http-threads <n>     HTTP handler threads; 0 = 2           [default: 0]
    --job-threads <n>      threads per job; 0 = cores/workers    [default: 0]
    --tenant-capacity <n>  queued jobs per tenant                [default: 32]
    --queue-capacity <n>   queued jobs across all tenants        [default: 256]
    --max-tenants <n>      distinct tenants with live queues     [default: 64]
    --quantum <n>          jobs per tenant per round-robin turn  [default: 4]
    --max-attempts <n>     attempts per job incl. retries        [default: 4]
    --serve-memory-budget <b>
                           total admission budget across all live jobs;
                           plain bytes or k/M/G. Jobs that do not fit are
                           shed with a typed 503 until running jobs
                           release their reservations. 0 = unlimited.
                           (--memory-budget still applies per job: each
                           budgeted job runs out-of-core.)   [default: 0]

    Prints `serve: listening on <addr>` once ready, then blocks. Stop it
    with POST /admin/shutdown?mode=drain|fast (fast leaves queued jobs on
    disk; the next start on the same --state-dir re-admits them).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("assemble") => return assemble_main(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("graph") => graph(&args[1..]),
        Some("variants") => variants(&args[1..]),
        Some("classify") => classify(&args[1..]),
        Some("obs-check") => obs_check(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `focus help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal `--key value` / `--flag` parser.
struct Options {
    pairs: Vec<(String, Option<String>)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {:?}", args[i]))?
                .to_string();
            let takes_value = !matches!(
                key.as_str(),
                "keep-both-strands" | "with-sequences" | "logical-clock" | "resume" | "json"
            );
            if takes_value {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?
                    .clone();
                pairs.push((key, Some(value)));
                i += 2;
            } else {
                pairs.push((key, None));
                i += 1;
            }
        }
        Ok(Options { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }
}

/// Parses a byte count like `1048576`, `64k`, `512M` or `2G` (suffixes
/// case-insensitive, optionally followed by `b`/`B`).
fn parse_bytes(key: &str, text: &str) -> Result<u64, String> {
    let lower = text.to_ascii_lowercase();
    let lower = lower.strip_suffix('b').unwrap_or(&lower);
    let (digits, shift) = match lower.as_bytes().last() {
        Some(b'k') => (&lower[..lower.len() - 1], 10),
        Some(b'm') => (&lower[..lower.len() - 1], 20),
        Some(b'g') => (&lower[..lower.len() - 1], 30),
        _ => (lower, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("--{key}: cannot parse {text:?} (expected bytes, e.g. 512M)"))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("--{key}: {text:?} overflows u64"))
}

fn read_input(path: &str) -> Result<Vec<Read>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    let lower = path.to_ascii_lowercase();
    let parsed = if lower.ends_with(".fastq") || lower.ends_with(".fq") {
        fastq::parse(reader)
    } else if lower.ends_with(".fasta") || lower.ends_with(".fa") || lower.ends_with(".fna") {
        fasta::parse(reader)
    } else {
        return Err(format!(
            "{path}: unknown extension (expected .fasta/.fa/.fastq/.fq)"
        ));
    };
    parsed.map_err(|e| format!("{path}: {e}"))
}

/// Process exit code of an `assemble --crash-after` run that stopped at
/// its crash point — distinct from success (0) and failure (1) so the
/// chaos harness can tell "crashed where asked" from "fell over".
const EXIT_STOPPED: u8 = 3;

/// `assemble` drives its own exit code: 0 on success, 1 on error, 3 when
/// `--crash-after` stopped the run at a checkpoint boundary.
fn assemble_main(args: &[String]) -> ExitCode {
    match assemble(args) {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(phase)) => {
            eprintln!("stopped after checkpointing phase {}", phase.name());
            ExitCode::from(EXIT_STOPPED)
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parses checkpoint options; `Ok(None)` when checkpointing is off.
fn build_checkpoint_options(opts: &Options) -> Result<Option<CheckpointOptions>, String> {
    let dir = opts.get("checkpoint-dir");
    let resume = opts.flag("resume");
    let crash_after = match opts.get("crash-after") {
        None => None,
        Some(text) => Some(CkptPhase::parse(text).ok_or_else(|| {
            let names: Vec<&str> = CkptPhase::ALL.iter().map(|p| p.name()).collect();
            format!(
                "--crash-after: unknown phase {text:?}; expected one of {}",
                names.join(", ")
            )
        })?),
    };
    let Some(dir) = dir else {
        if resume || crash_after.is_some() {
            return Err("--resume and --crash-after need --checkpoint-dir".to_string());
        }
        return Ok(None);
    };
    let mut ckpt = CheckpointOptions::in_dir(dir);
    ckpt.resume = resume;
    ckpt.stop_after = crash_after;
    Ok(Some(ckpt))
}

fn assemble(args: &[String]) -> Result<Option<CkptPhase>, String> {
    let opts = Options::parse(args)?;
    let input = opts.require("input")?.to_string();
    let output = opts.require("output")?.to_string();

    let config = build_config(&opts)?;
    let ckpt = build_checkpoint_options(&opts)?;
    let out_of_core = config.memory_budget.is_some() || opts.get("spill-dir").is_some();

    let assembler = FocusAssembler::new(config).map_err(|e| e.to_string())?;
    let result: AssemblyResult = if out_of_core {
        // Out-of-core route: the input is streamed (never slurped), reads
        // are staged to disk pages, and alignment results spill through
        // CRC-verified files under the budget.
        let lower = input.to_ascii_lowercase();
        if !lower.ends_with(".fastq") && !lower.ends_with(".fq") {
            return Err(format!(
                "{input}: --memory-budget/--spill-dir stream FASTQ input only \
                 (expected .fastq/.fq)"
            ));
        }
        let spill_dir = match opts.get("spill-dir") {
            Some(dir) => std::path::PathBuf::from(dir),
            None => match opts.get("checkpoint-dir") {
                Some(dir) => std::path::Path::new(dir).join("ooc"),
                None => std::env::temp_dir().join(format!("focus-ooc-{}", std::process::id())),
            },
        };
        eprintln!("streaming {input} (spill dir {})", spill_dir.display());
        let ckpt_opts = ckpt.clone().unwrap_or_default();
        let ooc = OocOptions::in_dir(&spill_dir);
        match assembler
            .assemble_fastq_ooc(std::path::Path::new(&input), &ckpt_opts, &ooc)
            .map_err(|e| e.to_string())?
        {
            AssemblyOutcome::Completed(result) => result,
            AssemblyOutcome::Stopped(phase) => {
                write_obs_sinks(&opts, assembler.recorder())?;
                return Ok(Some(phase));
            }
        }
    } else {
        let reads = read_input(&input)?;
        eprintln!("read {} reads from {input}", reads.len());
        match &ckpt {
            None => assembler.assemble(&reads).map_err(|e| e.to_string())?,
            Some(ckpt_opts) => {
                match assembler
                    .assemble_with_checkpoints(&reads, ckpt_opts)
                    .map_err(|e| e.to_string())?
                {
                    AssemblyOutcome::Completed(result) => result,
                    AssemblyOutcome::Stopped(phase) => {
                        write_obs_sinks(&opts, assembler.recorder())?;
                        return Ok(Some(phase));
                    }
                }
            }
        }
    };
    eprintln!(
        "assembled {} contigs | N50 {} bp | max {} bp | total {} bp",
        result.stats.num_contigs,
        result.stats.n50,
        result.stats.max_contig,
        result.stats.total_bases
    );
    for phase in &result.profile.phases {
        eprintln!(
            "phase {:<12} {:>10.3?} | {} tasks on {} threads",
            phase.name, phase.wall, phase.tasks, phase.threads
        );
    }

    let contig_reads: Vec<Read> = result
        .contigs
        .iter()
        .enumerate()
        .map(|(i, c)| Read::new(format!("contig_{i} len={}", c.len()), c.clone()))
        .collect();
    let out = File::create(&output).map_err(|e| format!("cannot create {output}: {e}"))?;
    fasta::write(BufWriter::new(out), &contig_reads, 70).map_err(|e| e.to_string())?;
    eprintln!("wrote {output}");
    write_obs_sinks(&opts, assembler.recorder())?;
    Ok(None)
}

fn simulate(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args)?;
    let output = opts.require("output")?.to_string();
    let genome_len = opts.get_parsed("genome-len", 20_000usize)?;
    let coverage = opts.get_parsed("coverage", 10.0f64)?;
    let seed = opts.get_parsed("seed", 42u64)?;

    let dataset = single_genome_dataset(genome_len, coverage, seed).map_err(|e| e.to_string())?;
    let out = File::create(&output).map_err(|e| format!("cannot create {output}: {e}"))?;
    fastq::write(BufWriter::new(out), &dataset.reads, 30).map_err(|e| e.to_string())?;
    eprintln!(
        "simulated {} reads ({}x of {} bp) -> {output}",
        dataset.reads.len(),
        coverage,
        genome_len
    );
    Ok(())
}

fn build_config(opts: &Options) -> Result<FocusConfig, String> {
    let mut config = FocusConfig {
        partitions: opts.get_parsed("partitions", 16usize)?,
        subsets: opts.get_parsed("subsets", 4usize)?,
        partition_seed: opts.get_parsed("seed", 985_093u64)?,
        threads: opts.get_parsed("threads", 0usize)?,
        dedup_rc: !opts.flag("keep-both-strands"),
        ..Default::default()
    };
    config.overlap.min_overlap_len = opts.get_parsed("min-overlap", 50usize)?;
    config.overlap.min_identity = opts.get_parsed("min-identity", 0.90f64)?;
    if let Some(value) = opts.get("align-kernel") {
        config.overlap.kernel =
            focus_assembler::align::KernelKind::parse(value).ok_or_else(|| {
                format!("invalid --align-kernel {value:?}; expected scalar, bitparallel or auto")
            })?;
    }
    config.trim.min_read_len = opts.get_parsed("min-read-len", 40usize)?;
    config.trim.min_quality = opts.get_parsed("min-quality", 20.0f64)?;
    if let Some(text) = opts.get("memory-budget") {
        match parse_bytes("memory-budget", text)? {
            0 => config.memory_budget = None,
            bytes => config.memory_budget = Some(bytes),
        }
    }
    let wants_obs = ["trace", "metrics", "events"]
        .iter()
        .any(|k| opts.get(k).is_some());
    if wants_obs || opts.flag("logical-clock") {
        config.observability = if opts.flag("logical-clock") {
            focus_assembler::obs::ObsOptions::logical()
        } else {
            focus_assembler::obs::ObsOptions::wall_clock()
        };
    }
    Ok(config)
}

/// Writes the sinks requested by `--trace`, `--metrics` and `--events` from
/// the run's recorder, and prints the human-readable metrics report when
/// anything was recorded.
fn write_obs_sinks(opts: &Options, rec: &focus_assembler::obs::Recorder) -> Result<(), String> {
    use focus_assembler::obs::{human_report, write_chrome_trace, write_jsonl};
    if !rec.is_enabled() {
        return Ok(());
    }
    let events = rec.events();
    if let Some(path) = opts.get("trace") {
        std::fs::write(path, write_chrome_trace(&events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote trace {path} ({} events)", events.len());
    }
    if let Some(path) = opts.get("events") {
        std::fs::write(path, write_jsonl(&events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote events {path}");
    }
    if let Some(path) = opts.get("metrics") {
        std::fs::write(path, rec.snapshot_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote metrics {path}");
    }
    eprint!("{}", human_report(&rec.snapshot()));
    Ok(())
}

/// `focus serve` — a durable multi-tenant assembly job server. Builds the
/// base pipeline config from the same flags as `assemble`, then hands jobs
/// to [`AssemblyJobRunner`] with per-job checkpoint/resume.
fn serve(args: &[String]) -> Result<(), String> {
    use focus_assembler::focus::AssemblyJobRunner;
    use focus_assembler::serve::{SchedConfig, Serve, ServeConfig};
    use std::io::Write as _;
    use std::sync::Arc;

    let opts = Options::parse(args)?;
    let state_dir = opts.require("state-dir")?.to_string();
    let runner = AssemblyJobRunner::new(build_config(&opts)?).map_err(|e| e.to_string())?;

    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:7070").to_string(),
        workers: opts.get_parsed("workers", 0usize)?,
        http_threads: opts.get_parsed("http-threads", 0usize)?,
        job_threads: opts.get_parsed("job-threads", opts.get_parsed("threads", 0usize)?)?,
        sched: SchedConfig {
            per_tenant_capacity: opts
                .get_parsed("tenant-capacity", defaults.sched.per_tenant_capacity)?,
            total_capacity: opts.get_parsed("queue-capacity", defaults.sched.total_capacity)?,
            max_tenants: opts.get_parsed("max-tenants", defaults.sched.max_tenants)?,
            quantum: opts.get_parsed("quantum", defaults.sched.quantum)?,
        },
        retry: focus_assembler::dist::RetryPolicy {
            max_attempts: opts.get_parsed("max-attempts", defaults.retry.max_attempts)?,
            ..defaults.retry
        },
        memory_budget: match opts.get("serve-memory-budget") {
            None => defaults.memory_budget,
            Some(text) => parse_bytes("serve-memory-budget", text)?,
        },
        ..defaults
    };

    let server = Serve::start(cfg, &state_dir, Arc::new(runner)).map_err(|e| e.to_string())?;
    // The chaos harness and the README walkthrough parse this exact line to
    // learn the bound port: keep the format stable and flush immediately.
    println!("serve: listening on {}", server.addr());
    std::io::stdout().flush().ok();
    eprintln!("state dir {state_dir}; POST /admin/shutdown?mode=drain to stop");
    server.join();
    Ok(())
}

fn obs_check(args: &[String]) -> Result<(), String> {
    use focus_assembler::obs::{check_chrome_trace, check_jsonl_events, check_metrics_snapshot};
    let opts = Options::parse(args)?;
    let mut checked = 0usize;
    if let Some(path) = opts.get("trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let n = check_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("trace   {path}: ok ({n} events)");
        checked += 1;
    }
    if let Some(path) = opts.get("events") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let n = check_jsonl_events(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("events  {path}: ok ({n} events)");
        checked += 1;
    }
    if let Some(path) = opts.get("metrics") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        check_metrics_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("metrics {path}: ok");
        checked += 1;
    }
    if checked == 0 {
        return Err("obs-check needs at least one of --trace/--metrics/--events".to_string());
    }
    Ok(())
}

/// `focus profile` — span-DAG reconstruction and critical-path extraction
/// from a causal Chrome trace. The trace path is positional (`--input`
/// also works); `--json` switches to the byte-stable machine report.
fn profile(args: &[String]) -> Result<(), String> {
    use focus_assembler::obs::profile_chrome_trace;
    let (positional, rest) = match args.first() {
        Some(first) if !first.starts_with("--") => (Some(first.clone()), &args[1..]),
        _ => (None, args),
    };
    let opts = Options::parse(rest)?;
    let path = match positional {
        Some(p) => p,
        None => opts.require("input")?.to_string(),
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = profile_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    if opts.flag("json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.human_table());
    }
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args)?;
    let input = opts.require("input")?.to_string();
    let reads = read_input(&input)?;
    let lengths: Vec<usize> = reads.iter().map(Read::len).collect();
    let s = focus_assembler::focus::AssemblyStats::from_lengths(&lengths);
    println!("sequences : {}", s.num_contigs);
    println!("total bp  : {}", s.total_bases);
    println!("N50       : {}", s.n50);
    println!("longest   : {}", s.max_contig);
    println!("mean      : {:.1}", s.mean_len);
    Ok(())
}

fn graph(args: &[String]) -> Result<(), String> {
    use focus_assembler::graph::{digraph_to_dot, digraph_to_gfa};
    let opts = Options::parse(args)?;
    let input = opts.require("input")?.to_string();
    let output = opts.require("output")?.to_string();
    let config = build_config(&opts)?;
    let reads = read_input(&input)?;
    let assembler = FocusAssembler::new(config).map_err(|e| e.to_string())?;
    let prepared = assembler.prepare(&reads).map_err(|e| e.to_string())?;
    eprintln!(
        "overlap graph: {} nodes / {} edges -> hybrid graph: {} nodes / {} edges",
        prepared.graph.undirected.node_count(),
        prepared.graph.undirected.edge_count(),
        prepared.hybrid.node_count(),
        prepared.hybrid.directed.edge_count()
    );
    let text = if output.to_ascii_lowercase().ends_with(".dot") {
        digraph_to_dot(&prepared.hybrid.directed, None)
    } else {
        let with_seq = opts.flag("with-sequences");
        digraph_to_gfa(&prepared.hybrid.directed, |v| {
            with_seq.then(|| prepared.hybrid.contig(v, &prepared.store).to_string())
        })
    };
    std::fs::write(&output, text).map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!("wrote {output}");
    Ok(())
}

fn variants(args: &[String]) -> Result<(), String> {
    use focus_assembler::dist::cluster::{CostModel, SimCluster};
    use focus_assembler::dist::variants::{detect_variants, VariantConfig};
    use focus_assembler::partition::{partition_graph_set, PartitionConfig};
    let opts = Options::parse(args)?;
    let input = opts.require("input")?.to_string();
    let config = build_config(&opts)?;
    let k = config.partitions;
    let reads = read_input(&input)?;
    let assembler = FocusAssembler::new(config).map_err(|e| e.to_string())?;
    let prepared = assembler.prepare(&reads).map_err(|e| e.to_string())?;
    let partition = partition_graph_set(&prepared.hybrid.set, &PartitionConfig::new(k, 3))
        .map_err(|e| e.to_string())?;
    let support: Vec<u64> = prepared
        .hybrid
        .clusters
        .iter()
        .map(|c| c.len() as u64)
        .collect();
    let variant_config = VariantConfig {
        min_branch_support: opts.get_parsed("min-support", 2u64)?,
        ..Default::default()
    };
    let mut cluster = SimCluster::new(k, CostModel::default()).map_err(|e| e.to_string())?;
    let found = detect_variants(
        &prepared.hybrid.directed,
        partition.finest(),
        k,
        &support,
        &variant_config,
        &mut cluster,
    );
    println!("site\topens\tcloses\tmajor_support\tminor_support\tratio");
    for (i, v) in found.iter().enumerate() {
        println!(
            "{i}\t{}\t{}\t{}\t{}\t{:.3}",
            v.opens_at,
            v.closes_at,
            v.major_support,
            v.minor_support,
            v.support_ratio()
        );
    }
    eprintln!("{} candidate variant sites", found.len());
    Ok(())
}

fn classify(args: &[String]) -> Result<(), String> {
    use focus_assembler::classify::KmerClassifier;
    let opts = Options::parse(args)?;
    let input = opts.require("input")?.to_string();
    let refs_path = opts.require("references")?.to_string();
    let k = opts.get_parsed("kmer", 21usize)?;

    let references = read_input(&refs_path)?;
    if references.is_empty() {
        return Err(format!("{refs_path}: no reference records"));
    }
    let genomes: Vec<_> = references.iter().map(|r| r.seq.clone()).collect();
    let classifier = KmerClassifier::build(&genomes, k).map_err(|e| e.to_string())?;

    let reads = read_input(&input)?;
    let labels = classifier.classify_all(&reads);
    let mut counts = vec![0u64; references.len()];
    let mut unclassified = 0u64;
    for label in &labels {
        match label {
            Some(g) => counts[*g as usize] += 1,
            None => unclassified += 1,
        }
    }
    println!("reference\treads\tfraction");
    let total = reads.len().max(1) as f64;
    for (reference, &count) in references.iter().zip(&counts) {
        println!("{}\t{count}\t{:.4}", reference.name, count as f64 / total);
    }
    println!(
        "(unclassified)\t{unclassified}\t{:.4}",
        unclassified as f64 / total
    );
    Ok(())
}
